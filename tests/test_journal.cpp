// Durable event journal (DESIGN.md §12): record format, segment rotation,
// retention, crash recovery, the decode-fuzz guarantees (a corrupted or
// torn log never replays garbage and never crashes — recovery stops
// cleanly at the last valid record), the overlay-level crash-recovery
// goldens (durable subscriptions and the zero-match pen surviving broker
// restarts) and the recorder/replayer determinism properties backing
// tools/cake_replay.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "cake/core/event_system.hpp"
#include "cake/core/replay.hpp"
#include "cake/journal/journal.hpp"
#include "cake/util/env.hpp"
#include "cake/workload/generators.hpp"

namespace cake {
namespace {

using event::EventImage;
using filter::FilterBuilder;
using filter::Op;
using journal::Journal;
using journal::JournalConfig;
using journal::MemStorage;
using journal::Record;
using journal::RecordKind;
using routing::Overlay;
using routing::OverlayConfig;
using value::Value;

std::vector<std::byte> bytes_of(const std::string& text) {
  std::vector<std::byte> out(text.size());
  for (std::size_t i = 0; i < text.size(); ++i)
    out[i] = static_cast<std::byte>(text[i]);
  return out;
}

std::vector<Record> scan_all(const Journal& journal) {
  std::vector<Record> out;
  journal.scan(journal.first_offset(),
               [&](const Record& rec) { out.push_back(rec); });
  return out;
}

// ---- record log basics ------------------------------------------------------

TEST(Journal, AppendsAreMonotonicAndScanReturnsThemInOrder) {
  MemStorage storage;
  Journal journal{storage};
  EXPECT_TRUE(journal.empty());
  EXPECT_EQ(journal.next_offset(), 0u);

  for (int i = 0; i < 10; ++i) {
    const auto offset =
        journal.append_event(bytes_of("event-" + std::to_string(i)));
    EXPECT_EQ(offset, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(journal.size(), 10u);
  EXPECT_EQ(journal.next_offset(), 10u);

  const std::vector<Record> all = scan_all(journal);
  ASSERT_EQ(all.size(), 10u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].offset, i);
    EXPECT_EQ(all[i].kind, RecordKind::Event);
    EXPECT_EQ(all[i].payload, bytes_of("event-" + std::to_string(i)));
  }

  // scan(from) skips everything below `from`.
  std::vector<std::uint64_t> offsets;
  journal.scan(7, [&](const Record& rec) { offsets.push_back(rec.offset); });
  EXPECT_EQ(offsets, (std::vector<std::uint64_t>{7, 8, 9}));
}

TEST(Journal, RotationSplitsSegmentsAndReopenRecoversEverything) {
  MemStorage storage;
  std::vector<std::vector<std::byte>> payloads;
  {
    Journal journal{storage, JournalConfig{.segment_bytes = 256}};
    for (int i = 0; i < 40; ++i) {
      payloads.push_back(bytes_of("record-payload-" + std::to_string(i)));
      journal.append_event(payloads.back());
    }
    EXPECT_GT(journal.segments(), 1u);
    journal.sync();
  }
  // A fresh journal over the same storage is a crash-recovery: every
  // record must come back, in order, with nothing torn.
  Journal reopened{storage, JournalConfig{.segment_bytes = 256}};
  EXPECT_EQ(reopened.stats().recovered_records, 40u);
  EXPECT_EQ(reopened.stats().torn_bytes, 0u);
  const std::vector<Record> all = scan_all(reopened);
  ASSERT_EQ(all.size(), payloads.size());
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(all[i].payload, payloads[i]) << "record " << i;
  // And the recovered log keeps appending where it left off.
  EXPECT_EQ(reopened.append_event(bytes_of("post-recovery")), 40u);
}

TEST(Journal, RetentionDropsWholeSegmentsFromTheFront) {
  MemStorage storage;
  Journal journal{storage,
                  JournalConfig{.segment_bytes = 256, .max_segments = 2}};
  for (int i = 0; i < 60; ++i)
    journal.append_event(bytes_of("retained-" + std::to_string(i)));
  EXPECT_LE(journal.segments(), 2u);
  EXPECT_GT(journal.first_offset(), 0u);
  EXPECT_GT(journal.stats().segments_retired, 0u);

  // Replay from an offset older than the cut starts at the cut.
  const std::vector<Record> all = scan_all(journal);
  ASSERT_FALSE(all.empty());
  EXPECT_EQ(all.front().offset, journal.first_offset());
  EXPECT_EQ(all.back().offset, journal.next_offset() - 1);
  std::vector<std::uint64_t> from_zero;
  journal.scan(0, [&](const Record& rec) { from_zero.push_back(rec.offset); });
  EXPECT_EQ(from_zero.front(), journal.first_offset());
}

TEST(Journal, CursorRecordsRoundtrip) {
  MemStorage storage;
  Journal journal{storage};
  journal.append_cursor(17, 42);
  journal.append_cursor_clear(17);

  const std::vector<Record> all = scan_all(journal);
  ASSERT_EQ(all.size(), 2u);
  ASSERT_EQ(all[0].kind, RecordKind::Cursor);
  const auto set = Journal::parse_cursor(all[0].payload);
  ASSERT_TRUE(set.has_value());
  EXPECT_EQ(set->subscriber, 17u);
  EXPECT_TRUE(set->active);
  EXPECT_EQ(set->offset, 42u);
  const auto cleared = Journal::parse_cursor(all[1].payload);
  ASSERT_TRUE(cleared.has_value());
  EXPECT_FALSE(cleared->active);
  // Garbage is rejected, not misparsed.
  EXPECT_FALSE(Journal::parse_cursor(bytes_of("xx")).has_value());
}

// ---- decode fuzz: corruption never replays garbage --------------------------

// Recovered records must be an exact prefix of what was appended: nothing
// reordered, nothing invented, nothing past the first invalid byte.
void expect_exact_prefix(const Journal& recovered,
                         const std::vector<std::vector<std::byte>>& originals) {
  const std::vector<Record> all = scan_all(recovered);
  ASSERT_LE(all.size(), originals.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    ASSERT_EQ(all[i].offset, i);
    ASSERT_EQ(all[i].payload, originals[i]) << "record " << i << " corrupted";
  }
}

// One small multi-segment journal shared by the fuzz sweeps below.
MemStorage fuzz_fixture(std::vector<std::vector<std::byte>>& payloads) {
  MemStorage storage;
  Journal journal{storage, JournalConfig{.segment_bytes = 192}};
  for (int i = 0; i < 16; ++i) {
    payloads.push_back(
        bytes_of("fuzz-record-" + std::to_string(i) + "-payload"));
    journal.append_event(payloads.back());
  }
  journal.sync();
  return storage;
}

TEST(JournalFuzz, TruncationAtEveryByteOffsetRecoversACleanPrefix) {
  std::vector<std::vector<std::byte>> payloads;
  const MemStorage pristine = fuzz_fixture(payloads);

  for (const std::string& name : pristine.list()) {
    const std::size_t full = pristine.read(name).size();
    for (std::size_t cut = 0; cut < full; ++cut) {
      MemStorage mutant = pristine;
      mutant.truncate(name, cut);
      // Must not throw: a torn tail is recovery's job, not an error.
      Journal recovered{mutant, JournalConfig{.segment_bytes = 192}};
      expect_exact_prefix(recovered, payloads);
      // The recovered log still accepts appends at the right offset.
      const auto next = recovered.next_offset();
      EXPECT_EQ(recovered.append_event(bytes_of("after-cut")), next);
      if (HasFatalFailure()) {
        ADD_FAILURE() << "blob " << name << " truncated to " << cut;
        return;
      }
    }
  }
}

TEST(JournalFuzz, BitFlipsAtEveryByteNeverReplayACorruptRecord) {
  std::vector<std::vector<std::byte>> payloads;
  const MemStorage pristine = fuzz_fixture(payloads);

  for (const std::string& name : pristine.list()) {
    const std::size_t full = pristine.read(name).size();
    for (std::size_t pos = 0; pos < full; ++pos) {
      MemStorage mutant = pristine;
      // Walk the flipped bit with the position so every bit lane in every
      // header field gets exercised across the sweep.
      mutant.mutate(name)[pos] ^= static_cast<std::byte>(1u << (pos % 8));
      Journal recovered{mutant, JournalConfig{.segment_bytes = 192}};
      expect_exact_prefix(recovered, payloads);
      if (HasFatalFailure()) {
        ADD_FAILURE() << "blob " << name << " bit flipped at byte " << pos;
        return;
      }
    }
  }
}

// ---- overlay crash-recovery goldens -----------------------------------------

EventImage pub_event(int year, const std::string& conf,
                     const std::string& author, const std::string& title) {
  return EventImage{"Publication",
                    {{"year", Value{year}},
                     {"conference", Value{conf}},
                     {"author", Value{author}},
                     {"title", Value{title}}}};
}

OverlayConfig durable_config() {
  OverlayConfig config;
  config.stage_counts = {1};  // single root: placement is pinned
  config.durability = routing::Durability::Journal;
  config.broker.ttl = 1'000'000;
  config.broker.renew_interval = 400'000;
  config.broker.reap_interval = 500'000;
  config.broker.match_grace = 10'000'000;
  config.subscriber.renew_interval = 400'000;
  return config;
}

struct DurableFx {
  explicit DurableFx(OverlayConfig config = durable_config())
      : overlay(config) {
    workload::ensure_types_registered();
    publisher = &overlay.add_publisher();
    publisher->advertise(workload::BiblioGenerator::schema());
    overlay.run();
  }
  Overlay overlay;
  routing::PublisherNode* publisher = nullptr;
};

// G1: a durable subscription detaches, misses events, resumes — every
// missed event is served exactly once from the journal (no bounded RAM
// buffer involved; the frames are re-read from the log).
TEST(JournalGolden, DurableSubscriptionReplaysMissedEventsFromTheJournal) {
  DurableFx fx;
  auto& sub = fx.overlay.add_subscriber();
  std::vector<std::string> seen;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                [&](const EventImage& image) {
                  seen.push_back(std::string{image.find("title")->as_string()});
                },
                {}, /*durable=*/true);
  fx.overlay.run();

  sub.detach();
  fx.overlay.run();
  for (int i = 0; i < 5; ++i)
    fx.publisher->publish(
        pub_event(2002, "ICDCS", "eugster", "missed-" + std::to_string(i)));
  fx.publisher->publish(pub_event(1999, "ICDCS", "eugster", "non-matching"));
  fx.overlay.run();
  EXPECT_TRUE(seen.empty());  // detached: nothing reaches the process

  sub.resume();
  fx.overlay.run();
  ASSERT_EQ(seen.size(), 5u);
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(seen[static_cast<std::size_t>(i)],
              "missed-" + std::to_string(i));
  EXPECT_GT(fx.overlay.root().stats().events_replayed, 0u);
  EXPECT_GT(fx.overlay.root().stats().events_journaled, 0u);
}

// G2: events that matched *nothing* (parked in the zero-match pen) survive
// a broker crash: restart() replays the journal, the frames re-park, and a
// late subscriber still gets them exactly once. The control arm — replay
// disabled — loses them, which is what the durable chaos oracle detects.
TEST(JournalGolden, PenParkedEventsSurviveBrokerRestartViaJournalReplay) {
  for (const bool replay_on : {true, false}) {
    OverlayConfig config = durable_config();
    config.broker.journal_replay_on_restart = replay_on;
    DurableFx fx{config};
    for (int i = 0; i < 3; ++i)
      fx.publisher->publish(
          pub_event(2002, "ICDCS", "eugster", "parked-" + std::to_string(i)));
    fx.overlay.run();
    EXPECT_EQ(fx.overlay.root().stats().events_parked, 3u);

    fx.overlay.crash(0);
    fx.overlay.restart(0);
    fx.overlay.run();

    auto& sub = fx.overlay.add_subscriber();
    int count = 0;
    sub.subscribe(FilterBuilder{"Publication"}
                      .where("year", Op::Eq, Value{2002})
                      .build(),
                  [&](const EventImage&) { ++count; });
    fx.overlay.run();
    // Let the pen re-match the replayed frames against the healed table.
    fx.overlay.scheduler().run_until(fx.overlay.scheduler().now() +
                                     2 * config.broker.match_grace);
    if (replay_on) {
      EXPECT_EQ(count, 3) << "journal replay must re-park and deliver";
      EXPECT_GT(fx.overlay.root().stats().journal_replays, 0u);
    } else {
      EXPECT_EQ(count, 0) << "control arm: without replay the pen is lost";
    }
  }
}

// G3: durable cursor across a broker crash. A detached durable subscriber
// must resume from its journaled cursor even when the hosting broker
// crashed and cold-restarted in between (the cursor record is recovered
// from the log, not from the broker's RAM).
TEST(JournalGolden, DurableCursorSurvivesBrokerCrashAndRestart) {
  OverlayConfig config = durable_config();
  config.link.reliability = link::Reliability::Reliable;
  config.subscriber.dedup_events = true;  // replay + pen paths collapse
  DurableFx fx{config};
  auto& sub = fx.overlay.add_subscriber();
  std::vector<std::string> seen;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                [&](const EventImage& image) {
                  seen.push_back(std::string{image.find("title")->as_string()});
                },
                {}, /*durable=*/true);
  fx.overlay.run();

  sub.detach();
  fx.overlay.run();
  for (int i = 0; i < 4; ++i)
    fx.publisher->publish(
        pub_event(2002, "ICDCS", "eugster", "durable-" + std::to_string(i)));
  fx.overlay.run();

  fx.overlay.crash(0);
  fx.overlay.restart(0);
  fx.overlay.run();

  sub.resume();
  // Resume may land before the durable lease is re-established (the
  // subscriber rejoins on its next renewal after Expired); give the
  // soft-state machinery a few TTLs.
  fx.overlay.scheduler().run_until(fx.overlay.scheduler().now() + 20'000'000);
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 4u);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(seen[static_cast<std::size_t>(i)],
              "durable-" + std::to_string(i));
}

// ---- recorder / replayer determinism (tools/cake_replay) --------------------

std::uint64_t replay_seed_count() {
  // ~20 seeds in the PR lane; nightly raises it via CAKE_REPLAY_SEEDS=200.
  return util::env_u64("CAKE_REPLAY_SEEDS").value_or(20);
}

TEST(JournalReplay, RecordingIsByteIdenticalAcrossRuns) {
  const core::ReplayConfig cfg;
  for (std::uint64_t seed = 0; seed < replay_seed_count(); ++seed) {
    MemStorage storage_a, storage_b;
    Journal journal_a{storage_a}, journal_b{storage_b};
    const core::ReplayReport a = core::record_workload(cfg, seed, journal_a);
    const core::ReplayReport b = core::record_workload(cfg, seed, journal_b);
    ASSERT_TRUE(a.exact) << "seed " << seed << ": " << a.diff;
    ASSERT_GT(a.deliveries, 0u) << "seed " << seed;
    EXPECT_EQ(a.fingerprint, b.fingerprint) << "seed " << seed;
    EXPECT_TRUE(storage_a.identical(storage_b))
        << "seed " << seed << " produced different journal bytes";
  }
}

TEST(JournalReplay, ReplayingTwiceIsDeterministicAndMatchesTheRecording) {
  const core::ReplayConfig cfg;
  for (std::uint64_t seed = 0; seed < replay_seed_count(); ++seed) {
    MemStorage storage;
    Journal journal{storage};
    const core::ReplayReport live = core::record_workload(cfg, seed, journal);
    ASSERT_TRUE(live.exact) << "seed " << seed << ": " << live.diff;
    const core::ReplayReport first = core::replay_workload(cfg, seed, journal);
    const core::ReplayReport second = core::replay_workload(cfg, seed, journal);
    ASSERT_TRUE(first.exact) << "seed " << seed << ": " << first.diff;
    EXPECT_EQ(first.deliveries, live.deliveries) << "seed " << seed;
    EXPECT_EQ(first.fingerprint, second.fingerprint) << "seed " << seed;
    EXPECT_EQ(first.fingerprint, live.fingerprint) << "seed " << seed;
  }
}

}  // namespace
}  // namespace cake
