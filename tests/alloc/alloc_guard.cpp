// Allocation guard for the zero-allocation hot path (DESIGN.md §9).
//
// A counting `operator new` interposer pins the steady-state costs this PR
// claims: an inner broker forwarding an EventMsg frame performs *zero* heap
// allocations per event (borrowed decode + frame pass-through), and
// `LocalBus::publish` settles to a small fixed constant. The interposer is
// global to this binary, which is why these tests live in their own
// executable instead of the GLOB'd cake_tests.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "cake/filter/filter.hpp"
#include "cake/link/link.hpp"
#include "cake/routing/broker.hpp"
#include "cake/routing/protocol.hpp"
#include "cake/runtime/local_bus.hpp"
#include "cake/runtime/sim_transport.hpp"
#include "cake/runtime/threaded.hpp"
#include "cake/sim/sim.hpp"
#include "cake/workload/generators.hpp"
#include "cake/workload/types.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

std::uint64_t news() { return g_news.load(std::memory_order_relaxed); }

void* counted_alloc(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  const std::size_t rounded = (size + align - 1) / align * align;
  if (void* p = std::aligned_alloc(align, rounded ? rounded : align)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_news.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace cake {
namespace {

using filter::FilterBuilder;
using filter::Op;
using value::Value;

// An inner broker in steady state: borrowed decode, frame pass-through.
// After warm-up (scratch capacities grown, symbols interned, hash maps
// populated), re-delivering the same published frame must not allocate at
// all — not in the network, not in the broker, not in the sink delivery.
TEST(AllocGuard, BrokerForwardPathIsAllocationFree) {
  workload::ensure_types_registered();
  const auto& registry = reflect::TypeRegistry::global();

  sim::Scheduler scheduler;
  runtime::SimTransport transport{scheduler};
  sim::Network network{scheduler, 10};

  routing::BrokerConfig config;
  config.auto_renew = false;  // static workload: no periodic tasks
  routing::Broker broker{1, 1, network, transport, registry, config,
                         util::Rng{7}};
  broker.start();

  // A plain sink stands in for the next hop (subscriber-edge decode is
  // excluded by design: the owning decode happens once, at the edge).
  network.attach(2, [](sim::NodeId, const sim::Network::Payload&) {});

  // Install a filter the event matches, through the wire like a child would.
  workload::BiblioGenerator gen{{}, 2002};
  const event::EventImage image = gen.next_event();
  const auto filter = FilterBuilder{"Publication"}
                          .where("year", Op::Eq, *image.find("year"))
                          .build();
  ASSERT_TRUE(filter.matches(image, registry));
  network.send(2, 1,
               routing::encode(routing::Packet{routing::ReqInsert{filter, 2}}));
  scheduler.run();

  // One pre-encoded event frame, re-sent for every iteration: the publisher
  // serializes once and every hop below passes bytes through.
  const sim::Network::Payload frame =
      routing::encode_event_frame(image, 0, 1, 0);

  for (int i = 0; i < 64; ++i) {  // warm-up: grow every capacity once
    network.send(0, 1, frame);
    scheduler.run();
  }
  const std::uint64_t forwarded_before = broker.stats().events_forwarded;

  const std::uint64_t before = news();
  for (int i = 0; i < 512; ++i) {
    network.send(0, 1, frame);
    scheduler.run();
  }
  const std::uint64_t after = news();

  EXPECT_EQ(after - before, 0u)
      << "steady-state forward path allocated on the heap";
  EXPECT_EQ(broker.stats().events_forwarded, forwarded_before + 512);
  EXPECT_EQ(broker.stats().malformed_packets, 0u);
}

// The reliable link layer must not tax the steady-state forward path: with
// sequencing, delayed cumulative ACKs and retransmit timers armed, an inner
// broker forwarding to an acknowledging peer still performs zero heap
// allocations per event once warm. The sink runs its own LinkManager so the
// full protocol round-trips: tagged data out, dedup + in-order release +
// standalone ACK back, window recycling at the broker.
TEST(AllocGuard, ReliableForwardPathIsAllocationFree) {
  workload::ensure_types_registered();
  const auto& registry = reflect::TypeRegistry::global();

  sim::Scheduler scheduler;
  runtime::SimTransport transport{scheduler};
  sim::Network network{scheduler, 10};

  link::LinkOptions reliable;
  reliable.reliability = link::Reliability::Reliable;
  reliable.ack_delay = 0;  // ack within the drain so the window never fills

  routing::BrokerConfig config;
  config.auto_renew = false;
  config.link = reliable;
  routing::Broker broker{1, 1, network, transport, registry, config,
                         util::Rng{7}};
  broker.start();

  link::LinkManager sink{2, network, transport, reliable, 99};
  sink.attach([](sim::NodeId, const sim::Network::Payload&) {});

  workload::BiblioGenerator gen{{}, 2002};
  const event::EventImage image = gen.next_event();
  const auto filter = FilterBuilder{"Publication"}
                          .where("year", Op::Eq, *image.find("year"))
                          .build();
  ASSERT_TRUE(filter.matches(image, registry));
  sink.send_control(
      1, routing::encode(routing::Packet{routing::ReqInsert{filter, 2}}));
  scheduler.run();

  const sim::Network::Payload frame =
      routing::encode_event_frame(image, 0, 1, 0);

  for (int i = 0; i < 128; ++i) {  // warm-up: rings, maps, timer churn
    network.send(0, 1, frame);
    scheduler.run();
  }
  const std::uint64_t forwarded_before = broker.stats().events_forwarded;

  const std::uint64_t before = news();
  for (int i = 0; i < 512; ++i) {
    network.send(0, 1, frame);
    scheduler.run();
  }
  EXPECT_EQ(news() - before, 0u)
      << "reliable-link forward path allocated on the heap";
  EXPECT_EQ(broker.stats().events_forwarded, forwarded_before + 512);
  EXPECT_EQ(broker.link_counters().retransmits, 0u);
  EXPECT_EQ(sink.counters().duplicates_suppressed, 0u);
}

// Re-encode mode decodes without allocating and pooling recycles both the
// byte buffers and the intrusive refcount holder nodes, so even minting a
// fresh frame per forward is allocation-free in steady state. (This used to
// cost one shared_ptr control block per frame; the intrusive pooled holder
// removed it — the link layer needs standalone ACK encodes to be free.)
TEST(AllocGuard, ReencodeForwardWithPoolingCostsOneRefcountBlock) {
  workload::ensure_types_registered();
  const auto& registry = reflect::TypeRegistry::global();

  sim::Scheduler scheduler;
  runtime::SimTransport transport{scheduler};
  sim::Network network{scheduler, 10};

  routing::BrokerConfig config;
  config.auto_renew = false;
  config.forward = routing::ForwardMode::Reencode;
  routing::Broker broker{1, 1, network, transport, registry, config,
                         util::Rng{7}};
  broker.start();
  network.attach(2, [](sim::NodeId, const sim::Network::Payload&) {});

  const auto filter = FilterBuilder{"Publication"}.build();
  network.send(2, 1,
               routing::encode(routing::Packet{routing::ReqInsert{filter, 2}}));
  scheduler.run();

  workload::BiblioGenerator gen{{}, 2002};
  const sim::Network::Payload frame =
      routing::encode_event_frame(gen.next_event(), 0, 1, 0);

  for (int i = 0; i < 64; ++i) {
    network.send(0, 1, frame);
    scheduler.run();
  }

  const std::uint64_t before = news();
  for (int i = 0; i < 512; ++i) {
    network.send(0, 1, frame);
    scheduler.run();
  }
  EXPECT_EQ(news() - before, 0u)
      << "pooled re-encode should recycle buffers and holder nodes alike";
}

// LocalBus::publish: the typed event -> image extraction reuses a
// thread-local image and the match runs over thread-local scratch; the only
// remaining allocation is the per-publish target snapshot. Pin it to a
// small constant that holds for *every* iteration, not just on average.
TEST(AllocGuard, LocalBusPublishCostsAFixedSmallConstant) {
  workload::ensure_types_registered();
  runtime::LocalBus bus{index::Engine::Counting,
                        reflect::TypeRegistry::global()};
  int delivered = 0;
  bus.subscribe(FilterBuilder{"Stock"}.build(),
                [&](const event::Event&) { ++delivered; });

  const workload::Stock stock{"CAKE", 31.41, 1000};
  for (int i = 0; i < 64; ++i) bus.publish(stock);  // warm-up

  const std::uint64_t before = news();
  bus.publish(stock);
  const std::uint64_t per_publish = news() - before;
  EXPECT_LE(per_publish, 2u) << "publish cost grew beyond the snapshot";

  for (int i = 0; i < 256; ++i) {
    const std::uint64_t start = news();
    bus.publish(stock);
    EXPECT_EQ(news() - start, per_publish) << "iteration " << i;
  }
  EXPECT_EQ(delivered, 64 + 1 + 256);
}

// Threaded fabric forward path (DESIGN.md §14): the cross-lane handoff —
// ring push, pending counter, batched drain task — rides on pooled frames
// and SBO-sized closures, so its overhead over the zero-alloc sim forward
// path must stay under 0.25 allocations per event. The interposer counts
// across every thread (g_news is atomic), so the budget covers the whole
// pipeline: main-thread sends, the broker lane's forwards, the sink lane's
// deliveries.
TEST(AllocGuard, ThreadedFabricForwardOverheadStaysUnderQuarterAllocPerEvent) {
  workload::ensure_types_registered();
  const auto& registry = reflect::TypeRegistry::global();

  runtime::ThreadedTransport transport{};
  sim::Scheduler scheduler;  // fabric mode never runs it; Network wants one
  sim::Network network{scheduler, 10};
  network.bind_lanes(transport, [&transport](sim::NodeId node) {
    return static_cast<std::size_t>(node) % transport.workers();
  });

  routing::BrokerConfig config;
  config.auto_renew = false;
  // Real threads run on the wall clock: push every periodic deadline far
  // past the test so no lease machinery fires mid-measurement.
  config.ttl = 3'600'000'000;
  config.renew_interval = 1'800'000'000;
  config.reap_interval = 1'800'000'000;
  routing::Broker broker{1, 1, network, transport, registry, config,
                         util::Rng{7}};
  network.attach(2, [](sim::NodeId, const sim::Network::Payload&) {});
  // Start on the broker's own lane: timers inherit lane affinity and the
  // handler attach is serialized before any traffic reaches the lane.
  transport.post(1 % transport.workers(), [&broker] { broker.start(); });
  transport.drain();

  workload::BiblioGenerator gen{{}, 2002};
  const event::EventImage image = gen.next_event();
  const auto filter = FilterBuilder{"Publication"}
                          .where("year", Op::Eq, *image.find("year"))
                          .build();
  ASSERT_TRUE(filter.matches(image, registry));
  network.send(2, 1,
               routing::encode(routing::Packet{routing::ReqInsert{filter, 2}}));
  transport.drain();

  const sim::Network::Payload frame =
      routing::encode_event_frame(image, 0, 1, 0);

  for (int i = 0; i < 128; ++i) network.send(0, 1, frame);  // warm-up
  transport.drain();
  const std::uint64_t forwarded_before = broker.stats().events_forwarded;

  constexpr std::uint64_t kEvents = 512;
  const std::uint64_t before = news();
  for (std::uint64_t i = 0; i < kEvents; ++i) network.send(0, 1, frame);
  transport.drain();
  const std::uint64_t after = news();

  EXPECT_LE(after - before, kEvents / 4)
      << "threaded handoff overhead exceeded 0.25 allocs/event: "
      << (after - before) << " allocs over " << kEvents << " events";
  EXPECT_EQ(broker.stats().events_forwarded, forwarded_before + kEvents);
  EXPECT_EQ(network.undeliverable(), 0u);
  transport.shutdown();
}

}  // namespace
}  // namespace cake
