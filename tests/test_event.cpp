// Unit tests for typed events, images, codecs and wire round trips.
#include "cake/event/event.hpp"

#include <gtest/gtest.h>

#include "cake/workload/types.hpp"

namespace cake::event {
namespace {

using workload::Auction;
using workload::CarAuction;
using workload::Publication;
using workload::Stock;
using workload::VehicleAuction;

class EventTest : public ::testing::Test {
protected:
  void SetUp() override { workload::ensure_types_registered(); }
};

TEST_F(EventTest, ImageOfExtractsAllAttributesInOrder) {
  const Stock stock{"Foo", 10.0, 32300};
  const EventImage image = image_of(stock);
  EXPECT_EQ(image.type_name(), "Stock");
  ASSERT_EQ(image.attributes().size(), 3u);
  EXPECT_EQ(image.attributes()[0].name, "symbol");
  EXPECT_EQ(image.attributes()[0].value, value::Value{"Foo"});
  EXPECT_EQ(image.attributes()[1].name, "price");
  EXPECT_EQ(image.attributes()[1].value, value::Value{10.0});
  EXPECT_EQ(image.attributes()[2].name, "volume");
  EXPECT_EQ(image.attributes()[2].value, value::Value{32300});
}

TEST_F(EventTest, ImageOfSubtypeIncludesInheritedAttributesFirst) {
  const CarAuction car{9000.0, 4, 5};
  const EventImage image = image_of(car);
  EXPECT_EQ(image.type_name(), "CarAuction");
  ASSERT_EQ(image.attributes().size(), 5u);
  EXPECT_EQ(image.attributes()[0].name, "product");
  EXPECT_EQ(image.attributes()[0].value, value::Value{"Vehicle"});
  EXPECT_EQ(image.attributes()[2].name, "kind");
  EXPECT_EQ(image.attributes()[2].value, value::Value{"Car"});
  EXPECT_EQ(image.attributes()[4].name, "doors");
  EXPECT_EQ(image.attributes()[4].value, value::Value{5});
}

TEST_F(EventTest, FindAndHas) {
  const EventImage image = image_of(Stock{"Bar", 15.0, 25600});
  ASSERT_NE(image.find("price"), nullptr);
  EXPECT_EQ(*image.find("price"), value::Value{15.0});
  EXPECT_EQ(image.find("nope"), nullptr);
  EXPECT_TRUE(image.has("symbol"));
  EXPECT_FALSE(image.has("nope"));
}

TEST_F(EventTest, ProjectionKeepsOnlyNamedAttributes) {
  const EventImage image = image_of(Stock{"Foo", 10.0, 32300});
  const EventImage weak = image.project({"symbol", "price"});
  EXPECT_EQ(weak.type_name(), "Stock");
  ASSERT_EQ(weak.attributes().size(), 2u);
  EXPECT_TRUE(weak.has("symbol"));
  EXPECT_TRUE(weak.has("price"));
  EXPECT_FALSE(weak.has("volume"));
}

TEST_F(EventTest, ProjectionIgnoresUnknownNames) {
  const EventImage image = image_of(Stock{"Foo", 10.0, 1});
  const EventImage weak = image.project({"symbol", "ghost"});
  EXPECT_EQ(weak.attributes().size(), 1u);
}

TEST_F(EventTest, ProjectionToEmpty) {
  const EventImage image = image_of(Stock{"Foo", 10.0, 1});
  EXPECT_TRUE(image.project({}).attributes().empty());
}

TEST_F(EventTest, EncodeDecodeRoundTrip) {
  const EventImage image = image_of(Publication{2002, "ICDCS", "Eugster",
                                                "Event Systems"});
  wire::Writer w;
  image.encode(w);
  wire::Reader r{w.bytes()};
  EXPECT_EQ(EventImage::decode(r), image);
}

TEST_F(EventTest, ToStringPaperRendering) {
  const EventImage image = image_of(Stock{"Foo", 10.0, 32300});
  EXPECT_EQ(image.to_string(),
            "(class, \"Stock\") (symbol, \"Foo\") (price, 10.0) (volume, 32300)");
}

TEST_F(EventTest, CodecRebuildsTypedEvent) {
  const Stock original{"Foo", 10.0, 32300};
  const std::unique_ptr<Event> rebuilt =
      EventCodec::global().decode(image_of(original));
  const auto* stock = dynamic_cast<const Stock*>(rebuilt.get());
  ASSERT_NE(stock, nullptr);
  EXPECT_EQ(stock->symbol(), "Foo");
  EXPECT_EQ(stock->price(), 10.0);
  EXPECT_EQ(stock->volume(), 32300);
}

TEST_F(EventTest, CodecRebuildsSubtypeAsItsDynamicType) {
  const VehicleAuction original{5000.0, "Truck", 12};
  const std::unique_ptr<Event> rebuilt =
      EventCodec::global().decode(image_of(original));
  const auto* vehicle = dynamic_cast<const VehicleAuction*>(rebuilt.get());
  ASSERT_NE(vehicle, nullptr);
  EXPECT_EQ(vehicle->kind(), "Truck");
  EXPECT_EQ(vehicle->product(), "Vehicle");
  // Also reachable through the base type (polymorphic delivery).
  EXPECT_NE(dynamic_cast<const Auction*>(rebuilt.get()), nullptr);
}

TEST_F(EventTest, CodecUnknownTypeThrows) {
  const EventImage orphan{"Ghost", {}};
  EXPECT_THROW((void)EventCodec::global().decode(orphan), reflect::ReflectError);
  EXPECT_FALSE(EventCodec::global().can_decode("Ghost"));
  EXPECT_TRUE(EventCodec::global().can_decode("Stock"));
}

TEST_F(EventTest, WireRoundTripFullPath) {
  const Stock original{"Baz", 99.5, 777};
  const std::vector<std::byte> bytes = to_wire(original);
  const std::unique_ptr<Event> rebuilt = from_wire(bytes, EventCodec::global());
  const auto* stock = dynamic_cast<const Stock*>(rebuilt.get());
  ASSERT_NE(stock, nullptr);
  EXPECT_EQ(stock->symbol(), "Baz");
}

TEST_F(EventTest, ImageFromWireNeedsNoFactory) {
  const Stock original{"Qux", 1.0, 2};
  const EventImage image = image_from_wire(to_wire(original));
  EXPECT_EQ(image, image_of(original));
}

TEST_F(EventTest, CorruptWireBytesThrow) {
  auto bytes = to_wire(Stock{"Foo", 1.0, 1});
  bytes[bytes.size() / 2] ^= std::byte{0x5a};
  EXPECT_THROW((void)image_from_wire(bytes), wire::WireError);
}

TEST_F(EventTest, MissingImageAttributeFailsReconstruction) {
  EventImage partial{"Stock", {{"symbol", value::Value{"Foo"}}}};
  EXPECT_THROW((void)EventCodec::global().decode(partial), reflect::ReflectError);
}

// Opaque payload: state not exposed as an attribute still crosses the wire.
class Sealed final : public EventOf<Sealed> {
public:
  explicit Sealed(std::string secret) : secret_(std::move(secret)) {}
  explicit Sealed(const EventImage& image) {
    wire::Reader r{image.opaque()};
    secret_ = r.string();
  }
  void save_extra(wire::Writer& w) const override { w.string(secret_); }
  [[nodiscard]] const std::string& secret() const noexcept { return secret_; }
  [[nodiscard]] std::int64_t tag() const noexcept { return 7; }

private:
  std::string secret_;
};

TEST_F(EventTest, OpaquePayloadSurvivesWireButNotProjection) {
  auto& registry = reflect::TypeRegistry::global();
  if (!registry.contains<Sealed>()) {
    reflect::TypeBuilder<Sealed>{registry, "Sealed"}
        .attr("tag", &Sealed::tag)
        .finalize();
    EventCodec::global().add("Sealed", [](const EventImage& image) {
      return std::make_unique<Sealed>(image);
    });
  }
  const Sealed original{"hidden-state"};
  const EventImage image = image_of(original);
  EXPECT_FALSE(image.opaque().empty());
  // Brokers never see the secret as an attribute...
  EXPECT_EQ(image.find("secret"), nullptr);
  // ...weakened copies drop it entirely...
  EXPECT_TRUE(image.project({"tag"}).opaque().empty());
  // ...but the subscriber-side reconstruction gets it back.
  const auto rebuilt = from_wire(to_wire(original), EventCodec::global());
  const auto* sealed = dynamic_cast<const Sealed*>(rebuilt.get());
  ASSERT_NE(sealed, nullptr);
  EXPECT_EQ(sealed->secret(), "hidden-state");
}

}  // namespace
}  // namespace cake::event
