// Unit tests for overlay construction and topology wiring.
#include "cake/routing/overlay.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cake::routing {
namespace {

TEST(Overlay, RequiresSingleRoot) {
  OverlayConfig config;
  config.stage_counts = {2, 4};
  EXPECT_THROW(Overlay{config}, std::invalid_argument);
  config.stage_counts = {};
  EXPECT_THROW(Overlay{config}, std::invalid_argument);
}

TEST(Overlay, PaperTopologyCounts) {
  OverlayConfig config;
  config.stage_counts = {1, 10, 100};
  Overlay overlay{config};
  EXPECT_EQ(overlay.stages(), 3u);
  EXPECT_EQ(overlay.brokers().size(), 111u);
  EXPECT_EQ(overlay.brokers_at(3).size(), 1u);
  EXPECT_EQ(overlay.brokers_at(2).size(), 10u);
  EXPECT_EQ(overlay.brokers_at(1).size(), 100u);
  EXPECT_THROW(overlay.brokers_at(0), std::out_of_range);
  EXPECT_THROW(overlay.brokers_at(4), std::out_of_range);
}

TEST(Overlay, RootHasNoParentAndCorrectStage) {
  OverlayConfig config;
  config.stage_counts = {1, 3, 9};
  Overlay overlay{config};
  EXPECT_TRUE(overlay.root().is_root());
  EXPECT_EQ(overlay.root().stage(), 3u);
  for (Broker* leaf : overlay.brokers_at(1)) {
    EXPECT_EQ(leaf->stage(), 1u);
    EXPECT_FALSE(leaf->is_root());
    EXPECT_TRUE(leaf->children().empty());
  }
}

TEST(Overlay, ChildrenDistributedEvenly) {
  OverlayConfig config;
  config.stage_counts = {1, 4, 16};
  Overlay overlay{config};
  EXPECT_EQ(overlay.root().children().size(), 4u);
  for (Broker* mid : overlay.brokers_at(2))
    EXPECT_EQ(mid->children().size(), 4u);
}

TEST(Overlay, UnevenFanoutStillCoversAllChildren) {
  OverlayConfig config;
  config.stage_counts = {1, 3, 10};
  Overlay overlay{config};
  std::size_t total_children = 0;
  std::set<sim::NodeId> seen;
  for (Broker* mid : overlay.brokers_at(2)) {
    total_children += mid->children().size();
    for (const sim::NodeId child : mid->children()) seen.insert(child);
  }
  EXPECT_EQ(total_children, 10u);
  EXPECT_EQ(seen.size(), 10u);  // every leaf has exactly one parent
}

TEST(Overlay, SingleStageHierarchy) {
  OverlayConfig config;
  config.stage_counts = {1};
  Overlay overlay{config};
  EXPECT_EQ(overlay.stages(), 1u);
  EXPECT_TRUE(overlay.root().is_root());
  EXPECT_EQ(overlay.root().stage(), 1u);
}

TEST(Overlay, EndpointIdsAreUnique) {
  OverlayConfig config;
  config.stage_counts = {1, 2};
  Overlay overlay{config};
  std::set<sim::NodeId> ids;
  for (const auto& broker : overlay.brokers()) ids.insert(broker->id());
  for (int i = 0; i < 5; ++i) ids.insert(overlay.add_subscriber().id());
  for (int i = 0; i < 3; ++i) ids.insert(overlay.add_publisher().id());
  EXPECT_EQ(ids.size(), 3u + 5u + 3u);
  EXPECT_EQ(overlay.subscribers().size(), 5u);
  EXPECT_EQ(overlay.publishers().size(), 3u);
}

TEST(Overlay, DeterministicUnderSeed) {
  // Two overlays with the same seed route a non-covered subscription to the
  // same random leaf.
  auto build_and_probe = [](std::uint64_t seed) {
    OverlayConfig config;
    config.stage_counts = {1, 4, 16};
    config.seed = seed;
    Overlay overlay{config};
    auto& sub = overlay.add_subscriber();
    sub.subscribe(filter::FilterBuilder{"Nowhere"}
                      .where("x", filter::Op::Eq, value::Value{1})
                      .build(),
                  {});
    overlay.run();
    return sub.accepted_at(1);
  };
  const auto a = build_and_probe(7);
  const auto b = build_and_probe(7);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, *b);
}

}  // namespace
}  // namespace cake::routing
