// Two-backend overlay conformance (DESIGN.md §14): the same seeded
// workload driven through a Sim-backed overlay and a Threaded-backed
// overlay must agree on every order-independent observable — the delivery
// multiset per subscriber, the broker-table fixpoint, and the network's
// conservation law. The sim run is the oracle; the threaded run must
// reproduce it while TSan watches (this file carries the blocking
// `threaded` ctest label).
//
// What is deliberately NOT compared: anything arrival-order dependent.
// Join redirects draw from each broker's rng, so with fan-out > 1 the
// *hosting leaf* of a subscription may differ across backends — the
// delivery multiset cannot (exact end-to-end filters are per-event
// deterministic), and on a chain topology (fan-out 1) the full table
// contents must match byte for byte.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "cake/event/event.hpp"
#include "cake/filter/filter.hpp"
#include "cake/routing/overlay.hpp"
#include "cake/workload/generators.hpp"
#include "cake/workload/types.hpp"

namespace cake::routing {
namespace {

using filter::FilterBuilder;
using filter::Op;
using value::Value;

struct SubSpec {
  const char* symbol;
  double max_price;
};

constexpr SubSpec kSubs[] = {
    {"AAA", 50.0}, {"BBB", 25.0}, {"CCC", 75.0},
    {"DDD", 100.0}, {"AAA", 10.0}, {"BBB", 90.0},
};
constexpr const char* kSymbols[] = {"AAA", "BBB", "CCC", "DDD"};
constexpr int kEvents = 240;

/// Order-independent observables of one workload run.
struct RunResult {
  std::vector<std::vector<std::int64_t>> delivered;  // per subscriber, sorted
  std::vector<std::string> tables;                   // canonical, per broker
  std::uint64_t fabric_messages = 0;
  std::uint64_t fabric_delivered = 0;
  std::uint64_t fabric_undeliverable = 0;
  std::vector<SubscriberNode::SubscriptionView> views;  // all subscribers
  std::vector<sim::NodeId> view_owner;                  // parallel to views
};

OverlayConfig conformance_config(OverlayBackend backend,
                                 link::Reliability reliability,
                                 std::vector<std::size_t> stages) {
  OverlayConfig config;
  config.stage_counts = std::move(stages);
  config.backend = backend;
  config.link.reliability = reliability;
  // The threaded backend runs on the wall clock, so push every soft-state
  // deadline far past the test's lifetime: lease churn, renewals and
  // failure detection are pinned by the sim-only chaos suites, and letting
  // them fire mid-run would make the two backends diverge on timing alone.
  config.broker.ttl = 3'600'000'000;
  config.broker.renew_interval = 1'800'000'000;
  config.broker.reap_interval = 1'800'000'000;
  config.subscriber.renew_interval = 1'800'000'000;
  config.subscriber.auto_renew = false;
  config.link.heartbeat_interval = 1'800'000'000;
  // Reliable arm: drain() waits for foreground work only, and a frame pended
  // on a full send window is released by a *background* ACK timer — so size
  // the window past the whole workload and push RTO out of reach. The arm
  // then pins the tagged seq/ack/dedup path itself, with no wall-clock timer
  // in the loop.
  config.link.window = 8192;
  config.link.rto_initial = 1'800'000'000;
  config.link.rto_max = 3'600'000'000;
  // rto_max == ttl deliberately violates the startup rule 4·rto_max ≤ ttl:
  // this suite wants *no* timer to fire, which is exactly the regime the
  // validation exists to reject in real configurations.
  config.validate = false;
  return config;
}

std::string canonical_table(Broker& broker) {
  std::vector<std::string> rows;
  for (auto& [form, children] : broker.table()) {
    std::vector<sim::NodeId> kids = children;
    std::sort(kids.begin(), kids.end());
    std::string row = form.to_string();
    for (const sim::NodeId kid : kids) {
      row += '|';
      row += std::to_string(kid);
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const std::string& row : rows) {
    out += row;
    out += '\n';
  }
  return out;
}

RunResult run_workload(OverlayBackend backend, link::Reliability reliability,
                       std::vector<std::size_t> stages) {
  workload::ensure_types_registered();
  Overlay overlay{conformance_config(backend, reliability, std::move(stages))};

  PublisherNode& pub_a = overlay.add_publisher();
  PublisherNode& pub_b = overlay.add_publisher();
  overlay.run_on(pub_a.id(),
                 [&] { pub_a.advertise(workload::StockGenerator::schema()); });
  overlay.run_on(pub_b.id(),
                 [&] { pub_b.advertise(workload::StockGenerator::schema()); });
  overlay.run();

  const std::size_t n_subs = std::size(kSubs);
  std::vector<SubscriberNode*> subs;
  // One sink per subscriber, written only by that subscriber's handler
  // (its own lane); read back through run_on after quiescence.
  auto sinks = std::make_unique<std::vector<std::int64_t>[]>(n_subs);
  for (std::size_t s = 0; s < n_subs; ++s) {
    SubscriberNode& sub = overlay.add_subscriber();
    subs.push_back(&sub);
    std::vector<std::int64_t>* sink = &sinks[s];
    overlay.run_on(sub.id(), [&sub, sink, s] {
      sub.subscribe(FilterBuilder{"Stock"}
                        .where("symbol", Op::Eq, Value{kSubs[s].symbol})
                        .where("price", Op::Lt, Value{kSubs[s].max_price})
                        .build(),
                    [sink](const event::EventImage& e) {
                      sink->push_back(e.find("volume")->as_int());
                    });
    });
  }
  overlay.run();  // join handshakes settle

  for (int i = 0; i < kEvents; ++i) {
    const char* symbol = kSymbols[i % std::size(kSymbols)];
    const double price = static_cast<double>((i * 7) % 101);
    PublisherNode& pub = (i % 2 == 0) ? pub_a : pub_b;
    overlay.post_on(pub.id(), [&pub, symbol, price, i] {
      pub.publish(event::image_of(workload::Stock{symbol, price, i}));
    });
  }
  overlay.run();

  RunResult result;
  for (std::size_t s = 0; s < n_subs; ++s) {
    // Read on the owning lane: the sink and the subscription views belong
    // to the subscriber's single-writer state.
    overlay.run_on(subs[s]->id(), [&, s] {
      std::vector<std::int64_t> sorted = sinks[s];
      std::sort(sorted.begin(), sorted.end());
      result.delivered.push_back(std::move(sorted));
      for (auto& view : subs[s]->subscription_views()) {
        result.views.push_back(std::move(view));
        result.view_owner.push_back(subs[s]->id());
      }
    });
  }
  for (const auto& broker : overlay.brokers()) {
    overlay.run_on(broker->id(), [&result, &b = *broker] {
      result.tables.push_back(canonical_table(b));
    });
  }
  // The lane-local inbox counters are exact only at quiescence. Best-effort
  // runs are quiescent after drain(); reliable runs may still have
  // background ACK/RTO timers firing, so skip the read there (no test
  // consumes it for the reliable arm).
  if (reliability == link::Reliability::BestEffort) {
    result.fabric_messages = overlay.network().total_messages();
    result.fabric_delivered = overlay.network().delivered();
    result.fabric_undeliverable = overlay.network().undeliverable();
  }
  return result;
}

/// True when some row of `table` (canonical form above) stores `form` with
/// `owner` among its children. Children are `|`-delimited, so the owner id
/// must match a whole token, not a digit prefix.
bool table_hosts(const std::string& table, const std::string& form,
                 sim::NodeId owner) {
  const std::string token = '|' + std::to_string(owner);
  std::size_t pos = 0;
  while (pos < table.size()) {
    std::size_t end = table.find('\n', pos);
    if (end == std::string::npos) end = table.size();
    const std::string_view line{table.data() + pos, end - pos};
    pos = end + 1;
    if (line.size() <= form.size() || line.substr(0, form.size()) != form ||
        line[form.size()] != '|')
      continue;
    const std::string_view kids = line.substr(form.size());
    for (std::size_t p = kids.find(token); p != std::string_view::npos;
         p = kids.find(token, p + 1)) {
      const std::size_t after = p + token.size();
      if (after == kids.size() || kids[after] == '|') return true;
    }
  }
  return false;
}

/// Expected per-subscriber volumes computed directly from the specs — an
/// oracle independent of either backend.
std::vector<std::vector<std::int64_t>> expected_deliveries() {
  std::vector<std::vector<std::int64_t>> expected(std::size(kSubs));
  for (int i = 0; i < kEvents; ++i) {
    const char* symbol = kSymbols[i % std::size(kSymbols)];
    const double price = static_cast<double>((i * 7) % 101);
    for (std::size_t s = 0; s < std::size(kSubs); ++s)
      if (symbol == std::string_view{kSubs[s].symbol} &&
          price < kSubs[s].max_price)
        expected[s].push_back(i);
  }
  return expected;
}

TEST(OverlayConformance, DeliveryMultisetMatchesSimOracleBestEffort) {
  const RunResult sim = run_workload(OverlayBackend::Sim,
                                     link::Reliability::BestEffort, {1, 2, 4});
  const RunResult threaded = run_workload(
      OverlayBackend::Threaded, link::Reliability::BestEffort, {1, 2, 4});
  EXPECT_EQ(sim.delivered, expected_deliveries());
  EXPECT_EQ(threaded.delivered, sim.delivered);
}

TEST(OverlayConformance, DeliveryMultisetMatchesSimOracleReliable) {
  const RunResult sim = run_workload(OverlayBackend::Sim,
                                     link::Reliability::Reliable, {1, 2, 4});
  const RunResult threaded = run_workload(
      OverlayBackend::Threaded, link::Reliability::Reliable, {1, 2, 4});
  EXPECT_EQ(sim.delivered, expected_deliveries());
  EXPECT_EQ(threaded.delivered, sim.delivered);
}

TEST(OverlayConformance, ChainTopologyTablesReachTheSameFixpoint) {
  // Fan-out 1 at every stage removes the rng from join routing, so the
  // broker tables themselves — not just the deliveries — must be
  // byte-identical across backends.
  const RunResult sim = run_workload(
      OverlayBackend::Sim, link::Reliability::BestEffort, {1, 1, 1});
  const RunResult threaded = run_workload(
      OverlayBackend::Threaded, link::Reliability::BestEffort, {1, 1, 1});
  EXPECT_EQ(threaded.tables, sim.tables);
  EXPECT_EQ(threaded.delivered, sim.delivered);
}

TEST(OverlayConformance, ThreadedTablesSatisfyTheFixpointInvariant) {
  // Fan-out topology: hosting leaves may differ from the sim run, but the
  // chaos-style fixpoint must hold *within* the threaded run — every
  // accepted subscription's (parent, stored form) appears in that parent's
  // table with the subscriber as a child.
  const RunResult threaded = run_workload(
      OverlayBackend::Threaded, link::Reliability::BestEffort, {1, 2, 4});
  ASSERT_FALSE(threaded.views.empty());
  for (std::size_t v = 0; v < threaded.views.size(); ++v) {
    const auto& view = threaded.views[v];
    ASSERT_TRUE(view.parent.has_value());
    const std::string form = view.stored.to_string();
    bool found = false;
    for (const std::string& table : threaded.tables)
      found |= table_hosts(table, form, threaded.view_owner[v]);
    EXPECT_TRUE(found) << "no broker table hosts " << form << " for subscriber "
                       << threaded.view_owner[v];
  }
}

TEST(OverlayConformance, FabricAccountingObeysConservation) {
  const RunResult threaded = run_workload(
      OverlayBackend::Threaded, link::Reliability::BestEffort, {1, 2, 4});
  // No loss, no duplication, no detached nodes in fabric mode: every
  // message sent is delivered.
  EXPECT_GT(threaded.fabric_messages, 0u);
  EXPECT_EQ(threaded.fabric_delivered + threaded.fabric_undeliverable,
            threaded.fabric_messages);
  EXPECT_EQ(threaded.fabric_undeliverable, 0u);
}

}  // namespace
}  // namespace cake::routing
