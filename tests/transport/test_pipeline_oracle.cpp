// Multithreaded delivery oracle for the batched event pipeline: several
// producer threads publish refcounted events through per-thread Producer
// handles into a ThreadedTransport-backed LocalBus, and every event must
// arrive exactly once — no lost events (a batch dropped on a queue edge),
// no duplicates (a batch posted twice), across batch boundaries, partial
// flushes, and lane handoff. The same check runs on the sim backend as
// the single-threaded control.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "backend_fixture.hpp"
#include "cake/filter/filter.hpp"
#include "cake/runtime/local_bus.hpp"
#include "cake/runtime/pipeline.hpp"
#include "cake/workload/types.hpp"

namespace cake::transport_tests {
namespace {

using filter::FilterBuilder;
using filter::Op;
using value::Value;

/// Thread-safe sink recording the unique id carried by each delivery.
class IdSink {
public:
  void record(std::int64_t id) {
    const std::lock_guard lock{mutex_};
    ids_.push_back(id);
  }

  [[nodiscard]] std::vector<std::int64_t> sorted() const {
    const std::lock_guard lock{mutex_};
    auto copy = ids_;
    std::sort(copy.begin(), copy.end());
    return copy;
  }

private:
  mutable std::mutex mutex_;
  std::vector<std::int64_t> ids_;
};

/// Every producer tags events with globally unique ids; after drain the
/// sink must hold exactly [0, total) with no gaps and no repeats.
void expect_exactly_once(const IdSink& sink, std::int64_t total) {
  const auto ids = sink.sorted();
  ASSERT_EQ(ids.size(), static_cast<std::size_t>(total))
      << "lost or duplicated events";
  for (std::int64_t i = 0; i < total; ++i)
    ASSERT_EQ(ids[static_cast<std::size_t>(i)], i)
        << "id " << i << " missing or repeated";
}

void subscribe_sinks(runtime::LocalBus& bus, IdSink& stocks, IdSink& auctions) {
  workload::ensure_types_registered();
  bus.subscribe(
      FilterBuilder{"Stock"}.where("volume", Op::Ge, Value{std::int64_t{0}}).build(),
      [&stocks](const event::Event& e) {
        stocks.record(static_cast<const workload::Stock&>(e).volume());
      });
  bus.subscribe(
      FilterBuilder{"Auction"}.where("price", Op::Ge, Value{0.0}).build(),
      [&auctions](const event::Event& e) {
        auctions.record(static_cast<std::int64_t>(
            static_cast<const workload::Auction&>(e).price()));
      });
}

/// Runs `threads` producers × `per_thread` events of each class through
/// the pipeline and asserts exactly-once delivery for both classes.
void run_oracle(runtime::Transport& transport, int threads, int per_thread,
                std::size_t batch) {
  runtime::LocalBus bus;
  IdSink stocks;
  IdSink auctions;
  subscribe_sinks(bus, stocks, auctions);

  runtime::EventPipeline pipeline{transport, bus,
                                  runtime::PipelineOptions{.batch = batch}};
  std::vector<std::thread> producers;
  for (int p = 0; p < threads; ++p)
    producers.emplace_back([&pipeline, p, per_thread] {
      runtime::EventPipeline::Producer producer{pipeline};
      for (int i = 0; i < per_thread; ++i) {
        const std::int64_t id = std::int64_t{p} * per_thread + i;
        producer.publish(std::make_shared<const workload::Stock>(
            "SYM", 1.0, id));
        producer.publish(std::make_shared<const workload::Auction>(
            "lot", static_cast<double>(id)));
      }
      // ~Producer flushes the partial tail batches.
    });
  for (auto& t : producers) t.join();
  pipeline.drain();

  const std::int64_t total = std::int64_t{threads} * per_thread;
  expect_exactly_once(stocks, total);
  expect_exactly_once(auctions, total);

  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(total) * 2);
  EXPECT_EQ(stats.delivered, static_cast<std::uint64_t>(total) * 2);
  EXPECT_GE(stats.batches, stats.submitted / batch);
}

TEST(PipelineOracle, ThreadedExactlyOnceUnderConcurrentProducers) {
  EnvGuard guard{"CAKE_THREADS", "4"};  // multi-lane even on small hosts
  runtime::ThreadedTransport transport{};
  ASSERT_EQ(transport.workers(), 4u);
  run_oracle(transport, /*threads=*/4, /*per_thread=*/2'000, /*batch=*/16);
}

TEST(PipelineOracle, ThreadedExactlyOnceWithTinyBatchesAndBackpressure) {
  EnvGuard guard{"CAKE_THREADS", "2"};
  // A small ring forces the backpressure path (spin-yield on full lanes).
  runtime::ThreadedTransport transport{
      runtime::ThreadedOptions{.queue_capacity = 64, .batch = 4}};
  run_oracle(transport, /*threads=*/3, /*per_thread=*/1'000, /*batch=*/2);
}

TEST(PipelineOracle, SimBackendIsTheSingleThreadedControl) {
  sim::Scheduler scheduler;
  runtime::SimTransport transport{scheduler};
  run_oracle(transport, /*threads=*/1, /*per_thread=*/500, /*batch=*/16);
}

/// Watermarked pipeline against a deliberately slow consumer: `n` events
/// of one class (one lane) through batch-1 posts so the lane's outstanding
/// depth tracks publishes one-for-one.
runtime::PipelineStats run_watermarked(health::OverloadPolicy policy,
                                       std::int64_t n) {
  runtime::LocalBus bus;
  workload::ensure_types_registered();
  std::atomic<std::int64_t> delivered{0};
  bus.subscribe(FilterBuilder{"Stock"}.build(),
                [&delivered](const event::Event&) {
                  std::this_thread::sleep_for(std::chrono::microseconds{200});
                  delivered.fetch_add(1);
                });
  runtime::ThreadedTransport transport{};
  runtime::PipelineOptions options;
  options.batch = 1;
  options.watermarks = true;
  options.lane = {.low = 2, .high = 4, .capacity = 8};
  options.policy = policy;
  runtime::EventPipeline pipeline{transport, bus, options};
  {
    runtime::EventPipeline::Producer producer{pipeline};
    for (std::int64_t id = 0; id < n; ++id)
      producer.publish(
          std::make_shared<const workload::Stock>("SYM", 1.0, id));
  }
  pipeline.drain();
  const runtime::PipelineStats stats = pipeline.stats();
  EXPECT_EQ(static_cast<std::uint64_t>(delivered.load()), stats.delivered);
  return stats;
}

TEST(PipelineOracle, ShedPolicyBoundsTheLaneAndAccountsEveryDrop) {
  EnvGuard guard{"CAKE_THREADS", "2"};
  const auto stats = run_watermarked(health::OverloadPolicy::Shed, 1'000);
  EXPECT_EQ(stats.submitted, 1'000u);
  // A publisher outrunning a 200us-per-event consumer must hit the high
  // watermark; every drop is counted, and the conservation identity holds:
  // submitted == delivered + shed, nothing silently vanishes.
  EXPECT_GT(stats.shed, 0u);
  EXPECT_EQ(stats.delivered + stats.shed, stats.submitted);
}

TEST(PipelineOracle, BlockPolicyIsLosslessUnderASlowConsumer) {
  EnvGuard guard{"CAKE_THREADS", "2"};
  const auto stats = run_watermarked(health::OverloadPolicy::Block, 1'000);
  // Block trades latency for completeness: publishes wait out the high
  // watermark instead of dropping, so everything submitted is delivered.
  EXPECT_GT(stats.blocks, 0u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.delivered, 1'000u);
}

TEST(PipelineOracle, PartialBatchesFlushOnProducerDestruction) {
  EnvGuard guard{"CAKE_THREADS", "2"};
  runtime::ThreadedTransport transport{};
  runtime::LocalBus bus;
  IdSink stocks;
  IdSink auctions;
  subscribe_sinks(bus, stocks, auctions);
  runtime::EventPipeline pipeline{transport, bus,
                                  runtime::PipelineOptions{.batch = 1024}};
  {
    runtime::EventPipeline::Producer producer{pipeline};
    // Far fewer events than the batch size: nothing would ever be posted
    // if flush-on-destruction were broken.
    for (std::int64_t id = 0; id < 7; ++id)
      producer.publish(
          std::make_shared<const workload::Stock>("SYM", 1.0, id));
  }
  pipeline.drain();
  expect_exactly_once(stocks, 7);
}

}  // namespace
}  // namespace cake::transport_tests
