// Flooded-fabric stress (DESIGN.md §15): deliberately undersized LaneInbox
// rings under a self-amplifying cross-lane storm. The full-ring path has
// exactly one escape hatch — a blocked lane worker help-drains its *own*
// inbox while it waits for room in the destination's — and this test forces
// that path hot: two lanes ping-pong an exponentially amplified relay storm
// through rings of 8 slots, and every message must still be delivered
// exactly once (the fabric blocks, it never drops).
#include <atomic>
#include <cstdint>

#include <gtest/gtest.h>

#include "backend_fixture.hpp"
#include "cake/runtime/threaded.hpp"
#include "cake/sim/sim.hpp"

namespace cake::transport_tests {
namespace {

TEST(FabricFlood, FullRingsForceHelpDrainingAndLoseNothing) {
  EnvGuard guard{"CAKE_THREADS", "2"};
  runtime::ThreadedTransport transport{};
  ASSERT_EQ(transport.workers(), 2u);
  sim::Scheduler scheduler;  // fabric mode never runs it; Network wants one
  sim::Network network{scheduler, 10};
  // Rings of 8 slots against a storm thousands deep: pushes must block on
  // full rings constantly, and blocked workers must help-drain to make
  // progress instead of deadlocking on each other.
  network.bind_lanes(
      transport,
      [](sim::NodeId node) { return static_cast<std::size_t>(node) % 2; },
      /*batch=*/4, /*inbox_capacity=*/8);

  // Node 0 lives on lane 0, node 1 on lane 1. Each delivery re-sends to
  // the opposite node twice while the relay budget lasts: the storm grows
  // 2x per hop, so both rings saturate from *inside* the workers — the
  // exact shape that deadlocks without the help-drain escape.
  constexpr std::int64_t kRelays = 20'000;
  constexpr std::uint64_t kSeeds = 64;
  std::atomic<std::int64_t> budget{kRelays};
  const wire::Frame frame{std::byte{0x5A}};
  const auto relay = [&](sim::NodeId self) {
    return [&network, &budget, self](sim::NodeId,
                                     const sim::Network::Payload& p) {
      for (int copy = 0; copy < 2; ++copy)
        if (budget.fetch_sub(1, std::memory_order_acq_rel) > 0)
          network.send(self, self == 0 ? 1 : 0, p);
    };
  };
  network.attach(0, relay(0));
  network.attach(1, relay(1));

  for (std::uint64_t i = 0; i < kSeeds; ++i)
    network.send(2, i % 2, frame);  // main-thread seeds, both lanes
  transport.drain();

  // Conservation: every seed and every budgeted relay was delivered
  // exactly once — the flood shed nothing, duplicated nothing.
  EXPECT_EQ(network.delivered(), kSeeds + kRelays);
  EXPECT_EQ(network.undeliverable(), 0u);
  // The storm actually exercised the full-ring path, not just grazed it.
  EXPECT_GT(network.help_drained(), 0u);
}

}  // namespace
}  // namespace cake::transport_tests
