// Shared fixture for the Transport conformance suite: one `Backend`
// wrapper per implementation, so every contract test in
// test_conformance.cpp runs verbatim against the deterministic sim
// backend (the oracle) and the threaded one (the implementation under
// test). The only backend-specific code is *how to wait*: the sim
// advances virtual time, the threaded backend polls wall-clock with a
// generous slack so CI jitter cannot flake a deadline.
#pragma once

#include <chrono>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cake/runtime/sim_transport.hpp"
#include "cake/runtime/threaded.hpp"
#include "cake/sim/sim.hpp"

namespace cake::transport_tests {

class Backend {
public:
  virtual ~Backend() = default;
  virtual runtime::Transport& transport() = 0;
  /// Advances (sim) or waits (threaded) until `pred` holds, giving the
  /// backend at least `budget_us` of its own notion of time. Returns the
  /// final pred() value.
  virtual bool wait_for(const std::function<bool()>& pred,
                        runtime::Time budget_us) = 0;
  [[nodiscard]] virtual bool threaded() const noexcept = 0;
};

class SimBackend final : public Backend {
public:
  runtime::Transport& transport() override { return transport_; }

  bool wait_for(const std::function<bool()>& pred,
                runtime::Time budget_us) override {
    const runtime::Time deadline = scheduler_.now() + budget_us;
    while (!pred() && scheduler_.now() < deadline)
      scheduler_.run_until(scheduler_.now() + 1000);
    return pred();
  }

  [[nodiscard]] bool threaded() const noexcept override { return false; }

private:
  sim::Scheduler scheduler_;
  runtime::SimTransport transport_{scheduler_};
};

class ThreadedBackend final : public Backend {
public:
  runtime::Transport& transport() override { return transport_; }

  bool wait_for(const std::function<bool()>& pred,
                runtime::Time budget_us) override {
    // Wall-clock budget plus fixed slack: loaded CI runners stretch
    // wall-clock delays, never shrink them, so extra waiting is always
    // sound for "did X happen" predicates.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(budget_us) +
                          std::chrono::seconds(2);
    while (!pred() && std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    return pred();
  }

  [[nodiscard]] bool threaded() const noexcept override { return true; }

private:
  runtime::ThreadedTransport transport_{};
};

inline std::unique_ptr<Backend> make_backend(const std::string& name) {
  if (name == "sim") return std::make_unique<SimBackend>();
  return std::make_unique<ThreadedBackend>();
}

/// Execution-order recorder, safe to write from transport workers.
class Recorder {
public:
  void add(int value) {
    const std::lock_guard lock{mutex_};
    values_.push_back(value);
  }

  [[nodiscard]] std::vector<int> snapshot() const {
    const std::lock_guard lock{mutex_};
    return values_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard lock{mutex_};
    return values_.size();
  }

private:
  mutable std::mutex mutex_;
  std::vector<int> values_;
};

/// Scoped environment override (for CAKE_THREADS clamp tests).
class EnvGuard {
public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_previous_ = true;
      previous_ = old;
    }
    ::setenv(name, value, 1);
  }

  ~EnvGuard() {
    if (had_previous_)
      ::setenv(name_, previous_.c_str(), 1);
    else
      ::unsetenv(name_);
  }

  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

private:
  const char* name_;
  bool had_previous_ = false;
  std::string previous_;
};

}  // namespace cake::transport_tests
