// Transport contract conformance — every test here runs against BOTH
// backends (see INSTANTIATE at the bottom). The sim backend is the
// semantic oracle: whatever it does is by definition correct, and the
// threaded backend must agree on every observable in this file (timer
// deadline ordering, FIFO at equal deadlines, cancellation semantics,
// same-lane serialization, drain()'s foreground/background split,
// reentrant submission).
#include <atomic>
#include <chrono>

#include <gtest/gtest.h>

#include "backend_fixture.hpp"

namespace cake::transport_tests {
namespace {

using runtime::Time;
using runtime::kNoTimer;

class TransportConformance : public testing::TestWithParam<std::string> {
protected:
  void SetUp() override { backend_ = make_backend(GetParam()); }

  runtime::Transport& transport() { return backend_->transport(); }
  bool wait_for(const std::function<bool()>& pred, Time budget_us) {
    return backend_->wait_for(pred, budget_us);
  }

  std::unique_ptr<Backend> backend_;
};

TEST_P(TransportConformance, TimersFireInDeadlineOrder) {
  auto recorder = std::make_shared<Recorder>();
  auto& t = transport();
  // Scheduled out of deadline order on purpose.
  t.schedule_background_after(40'000, [recorder] { recorder->add(40); });
  t.schedule_background_after(10'000, [recorder] { recorder->add(10); });
  t.schedule_background_after(25'000, [recorder] { recorder->add(25); });
  ASSERT_TRUE(wait_for([&] { return recorder->size() == 3; }, 100'000));
  EXPECT_EQ(recorder->snapshot(), (std::vector<int>{10, 25, 40}));
}

TEST_P(TransportConformance, EqualDeadlineTimersFireInScheduleOrder) {
  auto recorder = std::make_shared<Recorder>();
  auto& t = transport();
  // One absolute deadline for all three, so even the wall-clock backend
  // sees byte-identical `at` values and must fall back to the FIFO
  // tie-break.
  const Time at = t.now() + 30'000;
  for (int i = 0; i < 3; ++i)
    t.schedule_background_at(at, [recorder, i] { recorder->add(i); });
  ASSERT_TRUE(wait_for([&] { return recorder->size() == 3; }, 100'000));
  EXPECT_EQ(recorder->snapshot(), (std::vector<int>{0, 1, 2}));
}

TEST_P(TransportConformance, CancelPreventsTheTaskFromEverRunning) {
  auto fired = std::make_shared<std::atomic<bool>>(false);
  auto sentinel = std::make_shared<std::atomic<bool>>(false);
  auto& t = transport();
  const auto id =
      t.schedule_cancellable_after(50'000, [fired] { fired->store(true); });
  ASSERT_NE(id, kNoTimer);
  EXPECT_TRUE(t.cancel(id));
  EXPECT_FALSE(t.cancel(id)) << "cancel must return true exactly once";
  // A later sentinel proves time actually passed the cancelled deadline.
  t.schedule_background_after(80'000, [sentinel] { sentinel->store(true); });
  ASSERT_TRUE(wait_for([&] { return sentinel->load(); }, 200'000));
  EXPECT_FALSE(fired->load()) << "cancelled timer must never run";
}

TEST_P(TransportConformance, CancelAfterFireReturnsFalse) {
  auto fired = std::make_shared<std::atomic<bool>>(false);
  auto& t = transport();
  const auto id =
      t.schedule_cancellable_after(5'000, [fired] { fired->store(true); });
  ASSERT_TRUE(wait_for([&] { return fired->load(); }, 100'000));
  EXPECT_FALSE(t.cancel(id));
}

TEST_P(TransportConformance, CancelOfUnknownIdsIsSafeAndFalse) {
  auto& t = transport();
  EXPECT_FALSE(t.cancel(kNoTimer));
  EXPECT_FALSE(t.cancel(0xdeadbeef));
}

TEST_P(TransportConformance, DrainRunsEveryPost) {
  auto count = std::make_shared<std::atomic<int>>(0);
  auto& t = transport();
  for (int i = 0; i < 100; ++i)
    t.post([count] { count->fetch_add(1); });
  t.drain();
  EXPECT_EQ(count->load(), 100);
}

TEST_P(TransportConformance, DrainWaitsForReentrantPosts) {
  auto count = std::make_shared<std::atomic<int>>(0);
  auto& t = transport();
  t.post([count, &t] {
    count->fetch_add(1);
    t.post([count, &t] {
      count->fetch_add(1);
      t.post([count] { count->fetch_add(1); });
    });
  });
  t.drain();
  EXPECT_EQ(count->load(), 3);
}

TEST_P(TransportConformance, DrainWaitsForForegroundTimers) {
  auto fired = std::make_shared<std::atomic<bool>>(false);
  auto& t = transport();
  t.schedule_after(20'000, [fired] { fired->store(true); });
  t.drain();
  EXPECT_TRUE(fired->load());
}

TEST_P(TransportConformance, DrainDoesNotWaitForBackgroundTimers) {
  auto background = std::make_shared<std::atomic<bool>>(false);
  auto count = std::make_shared<std::atomic<int>>(0);
  auto& t = transport();
  // Far-future background work must not hold quiescence hostage.
  t.schedule_background_after(10'000'000, [background] {
    background->store(true);
  });
  t.post([count] { count->fetch_add(1); });
  const auto start = std::chrono::steady_clock::now();
  t.drain();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(count->load(), 1);
  EXPECT_FALSE(background->load());
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST_P(TransportConformance, SameLanePostsRunInSubmissionOrder) {
  auto recorder = std::make_shared<Recorder>();
  auto& t = transport();
  for (int i = 0; i < 64; ++i)
    t.post(0, [recorder, i] { recorder->add(i); });
  t.drain();
  const auto values = recorder->snapshot();
  ASSERT_EQ(values.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(values[i], i);
}

TEST_P(TransportConformance, LaneIndicesWrapModuloWorkers) {
  auto count = std::make_shared<std::atomic<int>>(0);
  auto& t = transport();
  ASSERT_GE(t.workers(), 1u);
  for (std::size_t lane = 0; lane < t.workers() * 3; ++lane)
    t.post(lane, [count] { count->fetch_add(1); });
  t.drain();
  EXPECT_EQ(count->load(), static_cast<int>(t.workers() * 3));
}

TEST_P(TransportConformance, TasksMayScheduleReentrantly) {
  auto fired = std::make_shared<std::atomic<bool>>(false);
  auto posted = std::make_shared<std::atomic<bool>>(false);
  auto& t = transport();
  t.post([&t, fired, posted] {
    t.schedule_background_after(5'000, [fired] { fired->store(true); });
    t.post([posted] { posted->store(true); });
  });
  ASSERT_TRUE(wait_for(
      [&] { return fired->load() && posted->load(); }, 100'000));
}

TEST_P(TransportConformance, NowIsMonotonicAndAdvancesAcrossTimers) {
  auto& t = transport();
  const Time before = t.now();
  auto fired = std::make_shared<std::atomic<bool>>(false);
  t.schedule_background_after(10'000, [fired] { fired->store(true); });
  ASSERT_TRUE(wait_for([&] { return fired->load(); }, 100'000));
  EXPECT_GE(t.now(), before);
}

INSTANTIATE_TEST_SUITE_P(Backends, TransportConformance,
                         testing::Values("sim", "threaded"),
                         [](const testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace cake::transport_tests
