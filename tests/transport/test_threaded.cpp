// ThreadedTransport-specific behaviour the sim oracle has no analogue
// for: the lock-free MPSC queue itself, cross-thread submission, batch
// boundaries, shutdown/rejection semantics, and the CAKE_THREADS worker
// clamp.
#include <atomic>
#include <future>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "backend_fixture.hpp"
#include "cake/runtime/mpsc.hpp"
#include "cake/runtime/threaded.hpp"

namespace cake::transport_tests {
namespace {

using runtime::BoundedMpscQueue;
using runtime::ThreadedOptions;
using runtime::ThreadedTransport;

TEST(MpscQueue, FifoOrderSingleThread) {
  BoundedMpscQueue<int> queue{8};
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.try_push(int{i}));
  int value = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.try_pop(value));
    EXPECT_EQ(value, i);
  }
  EXPECT_FALSE(queue.try_pop(value));
  EXPECT_TRUE(queue.empty());
}

TEST(MpscQueue, RejectsWhenFullAndRoundsCapacityToPowerOfTwo) {
  BoundedMpscQueue<int> queue{6};  // rounds up to 8
  int pushed = 0;
  while (queue.try_push(int{pushed})) ++pushed;
  EXPECT_EQ(pushed, 8);
  int value = -1;
  ASSERT_TRUE(queue.try_pop(value));
  EXPECT_EQ(value, 0);
  EXPECT_TRUE(queue.try_push(int{99}));  // slot freed by the pop
}

TEST(MpscQueue, MultiProducerSingleConsumerLosesAndDuplicatesNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 20'000;
  BoundedMpscQueue<int> queue{1024};
  std::atomic<bool> done{false};
  std::vector<int> received;
  received.reserve(kProducers * kPerProducer);

  std::thread consumer{[&] {
    int value = -1;
    while (!done.load(std::memory_order_acquire) || !queue.empty())
      if (queue.try_pop(value)) received.push_back(value);
  }};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int tagged = p * kPerProducer + i;
        while (!queue.try_push(int{tagged})) std::this_thread::yield();
      }
    });
  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  ASSERT_EQ(received.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::set<int> unique{received.begin(), received.end()};
  EXPECT_EQ(unique.size(), received.size()) << "duplicate delivery";
  // Per-producer FIFO: each producer's tags must appear in its own order.
  std::vector<int> next(kProducers, 0);
  for (const int tag : received) {
    const int p = tag / kPerProducer;
    EXPECT_EQ(tag % kPerProducer, next[p]) << "producer order violated";
    ++next[p];
  }
}

TEST(ThreadedTransportTest, CrossThreadPostsAllExecute) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5'000;
  ThreadedTransport transport{};
  std::atomic<int> count{0};
  std::vector<std::thread> posters;
  for (int p = 0; p < kThreads; ++p)
    posters.emplace_back([&transport, &count, p] {
      for (int i = 0; i < kPerThread; ++i)
        transport.post(static_cast<std::size_t>(p + i),
                       [&count] { count.fetch_add(1); });
    });
  for (auto& t : posters) t.join();
  transport.drain();
  EXPECT_EQ(count.load(), kThreads * kPerThread);
  EXPECT_GE(transport.stats().tasks,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(ThreadedTransportTest, ShutdownDrainsAlreadyQueuedTasks) {
  ThreadedTransport transport{ThreadedOptions{.workers = 1}};
  std::promise<void> release;
  std::shared_future<void> gate{release.get_future()};
  std::atomic<bool> blocked{false};
  std::atomic<int> count{0};
  transport.post([&blocked, gate] {
    blocked.store(true);
    gate.wait();
  });
  while (!blocked.load()) std::this_thread::yield();
  for (int i = 0; i < 50; ++i)
    transport.post([&count] { count.fetch_add(1); });
  release.set_value();
  transport.shutdown();  // must run the 50 queued tasks, then join
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadedTransportTest, SubmissionAfterShutdownIsRejectedNotLost) {
  ThreadedTransport transport{};
  transport.shutdown();
  std::atomic<int> count{0};
  transport.post([&count] { count.fetch_add(1); });
  transport.schedule_after(1'000, [&count] { count.fetch_add(1); });
  transport.drain();  // must return immediately: nothing was accepted
  EXPECT_EQ(count.load(), 0);
  EXPECT_GE(transport.stats().posts_rejected, 2u);
}

TEST(ThreadedTransportTest, BatchBoundaryIsExactlyN) {
  constexpr std::size_t kBatch = 8;
  ThreadedTransport transport{
      ThreadedOptions{.workers = 1, .queue_capacity = 64, .batch = kBatch}};
  std::promise<void> release;
  std::shared_future<void> gate{release.get_future()};
  std::atomic<bool> blocked{false};
  std::atomic<int> count{0};
  // Park the only worker inside a task so the queue accumulates exactly
  // kBatch items, then release: the next drain must take all kBatch in
  // one wakeup — and never more than kBatch even under further load.
  transport.post([&blocked, gate] {
    blocked.store(true);
    gate.wait();
  });
  while (!blocked.load()) std::this_thread::yield();
  for (std::size_t i = 0; i < kBatch; ++i)
    transport.post([&count] { count.fetch_add(1); });
  release.set_value();
  transport.drain();
  EXPECT_EQ(count.load(), static_cast<int>(kBatch));
  const auto stats = transport.stats();
  EXPECT_EQ(stats.max_batch, kBatch);
  EXPECT_GE(stats.batches, 2u);  // the blocker's singleton + the full batch
}

TEST(ThreadedTransportTest, BatchNeverExceedsConfiguredLimit) {
  constexpr std::size_t kBatch = 4;
  ThreadedTransport transport{
      ThreadedOptions{.workers = 1, .queue_capacity = 256, .batch = kBatch}};
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i)
    transport.post([&count] { count.fetch_add(1); });
  transport.drain();
  EXPECT_EQ(count.load(), 200);
  EXPECT_LE(transport.stats().max_batch, kBatch);
}

TEST(ThreadedTransportTest, WorkerCountRespectsCakeThreadsOverride) {
  {
    EnvGuard guard{"CAKE_THREADS", "3"};
    EXPECT_EQ(runtime::thread_limit(), 3u);
    EXPECT_EQ(runtime::resolve_workers(0), 3u);
    EXPECT_EQ(runtime::resolve_workers(8), 3u);
    EXPECT_EQ(runtime::resolve_workers(2), 2u);
    ThreadedTransport transport{};
    EXPECT_EQ(transport.workers(), 3u);
  }
  {
    EnvGuard guard{"CAKE_THREADS", "0"};
    EXPECT_EQ(runtime::thread_limit(), 1u);  // clamped up to 1
  }
  {
    EnvGuard guard{"CAKE_THREADS", "100000"};
    EXPECT_EQ(runtime::thread_limit(), runtime::kMaxWorkers);
  }
}

TEST(ThreadedTransportTest, WorkerCountDefaultsToHardwareClamp) {
  EnvGuard guard{"CAKE_THREADS", "1"};
  // With the env pinned the resolution is deterministic on any machine.
  ThreadedTransport transport{ThreadedOptions{.workers = 16}};
  EXPECT_EQ(transport.workers(), 1u);
}

TEST(ThreadedTransportTest, DistinctLanesMakeProgressIndependently) {
  EnvGuard guard{"CAKE_THREADS", "2"};
  ThreadedTransport transport{};
  ASSERT_EQ(transport.workers(), 2u);
  // Park lane 0; lane 1 must still run its task to completion.
  std::promise<void> release;
  std::shared_future<void> gate{release.get_future()};
  transport.post(0, [gate] { gate.wait(); });
  std::atomic<bool> lane1_ran{false};
  transport.post(1, [&lane1_ran] { lane1_ran.store(true); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!lane1_ran.load() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(lane1_ran.load()) << "a parked lane stalled its sibling";
  release.set_value();
  transport.drain();
}

TEST(ThreadedTransportTest, TimersFireOnTheLaneThatScheduledThem) {
  // The single-writer contract for overlay nodes hangs on this: a broker's
  // lease/RTO/heartbeat callbacks must come back to the broker's own lane.
  EnvGuard guard{"CAKE_THREADS", "4"};
  ThreadedTransport transport{};
  ASSERT_EQ(transport.workers(), 4u);
  std::atomic<int> mismatches{0};
  std::atomic<int> fired{0};
  for (std::size_t lane = 0; lane < 4; ++lane) {
    transport.post(lane, [&transport, &mismatches, &fired, lane] {
      ASSERT_EQ(runtime::current_lane(), lane);
      transport.schedule_after(1'000, [&mismatches, &fired, lane] {
        if (runtime::current_lane() != lane) mismatches.fetch_add(1);
        fired.fetch_add(1);
      });
    });
  }
  transport.drain();
  EXPECT_EQ(fired.load(), 4);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadedTransportTest, TimersFiredStatCounts) {
  ThreadedTransport transport{};
  std::atomic<int> fired{0};
  for (int i = 0; i < 5; ++i)
    transport.schedule_after(1'000 * (i + 1), [&fired] { fired.fetch_add(1); });
  transport.drain();
  EXPECT_EQ(fired.load(), 5);
  EXPECT_GE(transport.stats().timers_fired, 5u);
}

}  // namespace
}  // namespace cake::transport_tests
