// Unit tests for the dynamically-typed attribute value.
#include "cake/value/value.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cake::value {
namespace {

TEST(Value, DefaultIsNull) {
  Value v;
  EXPECT_EQ(v.kind(), Kind::Null);
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_numeric());
}

TEST(Value, KindsAreDetected) {
  EXPECT_EQ(Value{true}.kind(), Kind::Bool);
  EXPECT_EQ(Value{std::int64_t{4}}.kind(), Kind::Int);
  EXPECT_EQ(Value{4}.kind(), Kind::Int);
  EXPECT_EQ(Value{4.0}.kind(), Kind::Double);
  EXPECT_EQ(Value{"hi"}.kind(), Kind::String);
  EXPECT_EQ(Value{std::string{"hi"}}.kind(), Kind::String);
}

TEST(Value, AccessorsReturnStoredValues) {
  EXPECT_EQ(Value{true}.as_bool(), true);
  EXPECT_EQ(Value{42}.as_int(), 42);
  EXPECT_EQ(Value{2.5}.as_double(), 2.5);
  EXPECT_EQ(Value{"abc"}.as_string(), "abc");
}

TEST(Value, AccessorKindMismatchThrows) {
  EXPECT_THROW(Value{1}.as_string(), std::bad_variant_access);
  EXPECT_THROW(Value{"x"}.as_int(), std::bad_variant_access);
}

TEST(Value, NumericPromotionInEquality) {
  EXPECT_EQ(Value{1}, Value{1.0});
  EXPECT_EQ(Value{0}, Value{0.0});
  EXPECT_FALSE(Value{1} == Value{1.5});
}

TEST(Value, AsNumberOnlyForNumerics) {
  EXPECT_EQ(Value{3}.as_number(), 3.0);
  EXPECT_EQ(Value{3.5}.as_number(), 3.5);
  EXPECT_FALSE(Value{"3"}.as_number().has_value());
  EXPECT_FALSE(Value{true}.as_number().has_value());
  EXPECT_FALSE(Value{}.as_number().has_value());
}

TEST(Value, CompareNumericCrossKind) {
  EXPECT_EQ(Value{1}.compare(Value{2.0}), -1);
  EXPECT_EQ(Value{2.0}.compare(Value{1}), 1);
  EXPECT_EQ(Value{2}.compare(Value{2.0}), 0);
}

TEST(Value, CompareStrings) {
  EXPECT_EQ(Value{"abc"}.compare(Value{"abd"}), -1);
  EXPECT_EQ(Value{"b"}.compare(Value{"a"}), 1);
  EXPECT_EQ(Value{"x"}.compare(Value{"x"}), 0);
}

TEST(Value, CompareBools) {
  EXPECT_EQ(Value{false}.compare(Value{true}), -1);
  EXPECT_EQ(Value{true}.compare(Value{true}), 0);
}

TEST(Value, IncomparableKindsReturnNullopt) {
  EXPECT_FALSE(Value{"1"}.compare(Value{1}).has_value());
  EXPECT_FALSE(Value{true}.compare(Value{1}).has_value());
  EXPECT_FALSE(Value{}.compare(Value{}).has_value());
  EXPECT_FALSE(Value{}.compare(Value{1}).has_value());
}

TEST(Value, CrossKindEqualityIsFalseNotError) {
  EXPECT_FALSE(Value{"1"} == Value{1});
  EXPECT_FALSE(Value{true} == Value{1});
  EXPECT_TRUE(Value{} == Value{});
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value{1}.hash(), Value{1.0}.hash());
  EXPECT_EQ(Value{"abc"}.hash(), Value{std::string{"abc"}}.hash());
  // distinct values *usually* hash apart (not guaranteed, but these should)
  EXPECT_NE(Value{1}.hash(), Value{2}.hash());
  EXPECT_NE(Value{"a"}.hash(), Value{}.hash());
}

TEST(Value, ToStringRendering) {
  EXPECT_EQ(Value{}.to_string(), "null");
  EXPECT_EQ(Value{true}.to_string(), "true");
  EXPECT_EQ(Value{false}.to_string(), "false");
  EXPECT_EQ(Value{10}.to_string(), "10");
  EXPECT_EQ(Value{10.0}.to_string(), "10.0");
  EXPECT_EQ(Value{10.5}.to_string(), "10.5");
  EXPECT_EQ(Value{"Foo"}.to_string(), "\"Foo\"");
}

TEST(Value, NanIsUnorderedButPresent) {
  const Value nan{std::nan("")};
  EXPECT_FALSE(nan.compare(Value{10.0}).has_value());
  EXPECT_FALSE(Value{10.0}.compare(nan).has_value());
  EXPECT_FALSE(nan.compare(nan).has_value());
  EXPECT_FALSE(nan == Value{10.0});
  EXPECT_TRUE(nan.is_numeric());
}

TEST(Value, NegativeNumbers) {
  EXPECT_EQ(Value{-5}.compare(Value{5}), -1);
  EXPECT_EQ(Value{-5}.to_string(), "-5");
  EXPECT_EQ(Value{-2.5}.compare(Value{-2.5}), 0);
}

}  // namespace
}  // namespace cake::value
