// Tests for the non-hierarchical peer configuration (paper §4 footnote):
// reverse-path routing correctness on random acyclic meshes, per-link
// covering suppression, unsubscription, and the safety oracle.
#include "cake/peer/peer.hpp"

#include <gtest/gtest.h>

#include "cake/workload/generators.hpp"

namespace cake::peer {
namespace {

using event::EventImage;
using filter::ConjunctiveFilter;
using filter::FilterBuilder;
using filter::Op;
using value::Value;

EventImage pub_event(int year, const std::string& conf,
                     const std::string& author, const std::string& title) {
  return EventImage{"Publication",
                    {{"year", Value{year}},
                     {"conference", Value{conf}},
                     {"author", Value{author}},
                     {"title", Value{title}}}};
}

class PeerTest : public ::testing::Test {
protected:
  PeerTest() { workload::ensure_types_registered(); }
};

TEST_F(PeerTest, PacketRoundTrips) {
  const ConjunctiveFilter f =
      FilterBuilder{"Stock"}.where("price", Op::Lt, Value{10.0}).build();
  {
    const PeerPacket back = decode(encode(PeerPacket{PeerSub{f}}));
    EXPECT_EQ(std::get<PeerSub>(back).filter, f);
  }
  {
    const PeerPacket back = decode(encode(PeerPacket{PeerUnsub{f}}));
    EXPECT_EQ(std::get<PeerUnsub>(back).filter, f);
  }
  {
    const EventImage image = pub_event(2002, "ICDCS", "E", "t");
    const PeerPacket back = decode(encode(PeerPacket{PeerEvent{image, 777}}));
    EXPECT_EQ(std::get<PeerEvent>(back).image, image);
    EXPECT_EQ(std::get<PeerEvent>(back).published_at, 777u);
  }
  sim::Network::Payload garbage{std::byte{1}, std::byte{2}};
  EXPECT_THROW((void)decode(garbage), wire::WireError);
}

TEST_F(PeerTest, MeshIsASpanningTree) {
  PeerMesh mesh{12, {}, 5};
  std::size_t degree_sum = 0;
  for (const auto& broker : mesh.brokers())
    degree_sum += broker->neighbors().size();
  EXPECT_EQ(degree_sum, 2u * 11u);  // n-1 undirected edges
}

TEST_F(PeerTest, SingleBrokerDeliversLocally) {
  PeerMesh mesh{1, {}, 1};
  auto& sub = mesh.add_subscriber(0);
  auto& pub = mesh.add_publisher(0);
  int count = 0;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                [&](const EventImage&) { ++count; });
  mesh.run();
  pub.publish(pub_event(2002, "ICDCS", "E", "t"));
  pub.publish(pub_event(1999, "X", "Y", "z"));
  mesh.run();
  EXPECT_EQ(count, 1);
}

TEST_F(PeerTest, SubscriptionsPropagateAcrossTheMesh) {
  PeerMesh mesh{8, {}, 3};
  auto& sub = mesh.add_subscriber(7);
  auto& pub = mesh.add_publisher(0);
  int count = 0;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("author", Op::Eq, Value{"Eugster"})
                    .build(),
                [&](const EventImage&) { ++count; });
  mesh.run();
  pub.publish(pub_event(2002, "ICDCS", "Eugster", "t"));
  pub.publish(pub_event(2002, "ICDCS", "Felber", "t"));
  mesh.run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sub.events_received(), 1u);  // exact filters travel: no waste
}

TEST_F(PeerTest, ReversePathDeliversExactlyOnce) {
  // A subscriber in the middle of a path must get one copy even when the
  // event's path passes through its broker.
  PeerMesh mesh{5, {}, 9};
  auto& mid = mesh.add_subscriber(2);
  auto& far = mesh.add_subscriber(4);
  auto& pub = mesh.add_publisher(0);
  int mid_count = 0, far_count = 0;
  const auto f = FilterBuilder{"Publication"}
                     .where("year", Op::Eq, Value{2002})
                     .build();
  mid.subscribe(f, [&](const EventImage&) { ++mid_count; });
  far.subscribe(f, [&](const EventImage&) { ++far_count; });
  mesh.run();
  pub.publish(pub_event(2002, "ICDCS", "E", "t"));
  mesh.run();
  EXPECT_EQ(mid_count, 1);
  EXPECT_EQ(far_count, 1);
}

TEST_F(PeerTest, UnsubscribeWithdrawsAcrossLinks) {
  PeerMesh mesh{4, {}, 11};
  auto& sub = mesh.add_subscriber(3);
  auto& pub = mesh.add_publisher(0);
  int count = 0;
  const auto f = FilterBuilder{"Publication"}
                     .where("year", Op::Eq, Value{2002})
                     .build();
  sub.subscribe(f, [&](const EventImage&) { ++count; });
  mesh.run();
  pub.publish(pub_event(2002, "ICDCS", "E", "t"));
  mesh.run();
  EXPECT_EQ(count, 1);

  sub.unsubscribe(f);
  mesh.run();
  for (const auto& broker : mesh.brokers())
    EXPECT_EQ(broker->stats().filters, 0u) << "broker " << broker->id();
  pub.publish(pub_event(2002, "ICDCS", "E", "t2"));
  mesh.run();
  EXPECT_EQ(count, 1);
}

TEST_F(PeerTest, PerLinkCollapseSuppressesCoveredFilters) {
  PeerConfig config;
  config.collapse_per_link = true;
  PeerMesh mesh{2, config, 13};
  auto& wide = mesh.add_subscriber(0);
  auto& narrow = mesh.add_subscriber(0);
  wide.subscribe(FilterBuilder{"Stock"}
                     .where("symbol", Op::Eq, Value{"Foo"})
                     .where("price", Op::Lt, Value{11.0})
                     .build(),
                 {});
  mesh.run();
  narrow.subscribe(FilterBuilder{"Stock"}
                       .where("symbol", Op::Eq, Value{"Foo"})
                       .where("price", Op::Lt, Value{10.0})
                       .build(),
                   {});
  mesh.run();
  // Broker 0 holds both, but only the covering one crosses the link.
  EXPECT_EQ(mesh.brokers()[0]->stats().filters, 2u);
  EXPECT_EQ(mesh.brokers()[0]->advertised_to(mesh.brokers()[1]->id()), 1u);
  EXPECT_EQ(mesh.brokers()[1]->stats().filters, 1u);
}

TEST_F(PeerTest, WithoutCollapseEveryFilterCrossesEveryLink) {
  PeerConfig config;
  config.collapse_per_link = false;
  PeerMesh mesh{2, config, 13};
  auto& sub = mesh.add_subscriber(0);
  sub.subscribe(FilterBuilder{"Stock"}.where("price", Op::Lt, Value{11.0}).build(),
                {});
  sub.subscribe(FilterBuilder{"Stock"}.where("price", Op::Lt, Value{10.0}).build(),
                {});
  mesh.run();
  EXPECT_EQ(mesh.brokers()[1]->stats().filters, 2u);
}

TEST_F(PeerTest, LatencyTracksTreeDistance) {
  // Path topology (seed-independent check): build 3 brokers and find the
  // pair of endpoints; latencies differ by hop count.
  PeerMesh mesh{1, {}, 2};
  auto& sub = mesh.add_subscriber(0);
  auto& pub = mesh.add_publisher(0);
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                {});
  mesh.run();
  pub.publish(pub_event(2002, "c", "a", "t"));
  mesh.run();
  // publisher → broker → subscriber: 2 hops of the default 1 ms.
  EXPECT_DOUBLE_EQ(sub.delivery_latency().mean(), 2000.0);
}

// ---- advertisement semantics (Siena-style pruning) ---------------------------

TEST_F(PeerTest, AdvertisementsPruneSubscriptionPropagation) {
  PeerConfig config;
  config.use_advertisements = true;
  // Path topology: chain of 3 brokers (seeded spanning tree on 3 nodes can
  // be a star; build explicitly with 2 brokers + 1 to keep it a path).
  PeerMesh mesh{3, config, 8};
  auto& pub = mesh.add_publisher(0);
  pub.advertise(FilterBuilder{"Stock", true}.build());
  mesh.run();
  // The advertisement flooded everywhere.
  for (const auto& broker : mesh.brokers())
    EXPECT_EQ(broker->known_advertisements(), 1u);

  // A Publication subscription overlaps no advertisement: it stays at its
  // home broker and never crosses a link.
  auto& reader = mesh.add_subscriber(2);
  reader.subscribe(FilterBuilder{"Publication"}
                       .where("year", Op::Eq, Value{2002})
                       .build(),
                   {});
  mesh.run();
  std::size_t pub_filters = 0;
  for (const auto& broker : mesh.brokers()) pub_filters += broker->stats().filters;
  EXPECT_EQ(pub_filters, 1u);  // home broker only

  // A Stock subscription follows the advertisement path.
  auto& trader = mesh.add_subscriber(2);
  int fills = 0;
  trader.subscribe(FilterBuilder{"Stock"}
                       .where("symbol", Op::Eq, Value{"SYMA0"})
                       .build(),
                   [&](const EventImage&) { ++fills; });
  mesh.run();
  std::size_t stock_filters = 0;
  for (const auto& broker : mesh.brokers())
    stock_filters += broker->stats().filters;
  EXPECT_GT(stock_filters, 1u);  // crossed toward the publisher

  pub.publish(event::image_of(workload::Stock{"SYMA0", 10.0, 1}));
  pub.publish(event::image_of(workload::Stock{"SYMB1", 10.0, 1}));
  mesh.run();
  EXPECT_EQ(fills, 1);
}

TEST_F(PeerTest, UnadvertiseWithdrawsSubscriptionPaths) {
  PeerConfig config;
  config.use_advertisements = true;
  PeerMesh mesh{2, config, 8};
  auto& pub = mesh.add_publisher(0);
  const auto advert = FilterBuilder{"Stock", true}.build();
  pub.advertise(advert);
  mesh.run();

  auto& trader = mesh.add_subscriber(1);
  trader.subscribe(FilterBuilder{"Stock"}.build(), {});
  mesh.run();
  EXPECT_EQ(mesh.brokers()[0]->stats().filters, 1u);  // crossed the link

  pub.unadvertise(advert);
  mesh.run();
  for (const auto& broker : mesh.brokers())
    EXPECT_EQ(broker->known_advertisements(), 0u);
  // The subscription was withdrawn from the now-demandless link; it only
  // survives at its home broker.
  EXPECT_EQ(mesh.brokers()[0]->stats().filters, 0u);
  EXPECT_EQ(mesh.brokers()[1]->stats().filters, 1u);
}

TEST_F(PeerTest, LateAdvertisementUnlocksExistingSubscriptions) {
  PeerConfig config;
  config.use_advertisements = true;
  PeerMesh mesh{2, config, 8};
  auto& trader = mesh.add_subscriber(1);
  int fills = 0;
  trader.subscribe(FilterBuilder{"Stock"}.build(),
                   [&](const EventImage&) { ++fills; });
  mesh.run();
  EXPECT_EQ(mesh.brokers()[0]->stats().filters, 0u);  // no demand path yet

  auto& pub = mesh.add_publisher(0);
  pub.advertise(FilterBuilder{"Stock", true}.build());
  mesh.run();
  EXPECT_EQ(mesh.brokers()[0]->stats().filters, 1u);  // unlocked

  pub.publish(event::image_of(workload::Stock{"SYMA0", 10.0, 1}));
  mesh.run();
  EXPECT_EQ(fills, 1);
}

TEST_F(PeerTest, OracleHoldsWithAdvertisements) {
  PeerConfig config;
  config.use_advertisements = true;
  PeerMesh mesh{12, config, 21};
  workload::BiblioGenerator gen{{}, 22};
  auto& pub = mesh.add_publisher();
  pub.advertise(FilterBuilder{"Publication"}.build());
  mesh.run();

  constexpr int kSubs = 20;
  std::vector<ConjunctiveFilter> filters;
  std::vector<int> received(kSubs, 0), expected(kSubs, 0);
  for (int i = 0; i < kSubs; ++i) {
    filters.push_back(gen.next_subscription(i % 3));
    mesh.add_subscriber().subscribe(
        filters[i], [&received, i](const EventImage&) { ++received[i]; });
  }
  mesh.run();
  for (int e = 0; e < 300; ++e) {
    const EventImage image = gen.next_event();
    for (int i = 0; i < kSubs; ++i)
      if (filters[i].matches(image, reflect::TypeRegistry::global()))
        ++expected[i];
    pub.publish(image);
  }
  mesh.run();
  EXPECT_EQ(received, expected);
}

// Safety oracle on a random mesh, mirroring the hierarchy's property test.
TEST_F(PeerTest, DeliveredSetEqualsOracleSet) {
  PeerMesh mesh{15, {}, 77};
  workload::BiblioGenerator gen{{}, 42};
  auto& pub = mesh.add_publisher();

  constexpr int kSubs = 30;
  std::vector<ConjunctiveFilter> filters;
  std::vector<int> received(kSubs, 0), expected(kSubs, 0);
  for (int i = 0; i < kSubs; ++i) {
    filters.push_back(gen.next_subscription(i % 3));
    mesh.add_subscriber().subscribe(
        filters[i], [&received, i](const EventImage&) { ++received[i]; });
  }
  mesh.run();

  for (int e = 0; e < 400; ++e) {
    const EventImage image = gen.next_event();
    for (int i = 0; i < kSubs; ++i)
      if (filters[i].matches(image, reflect::TypeRegistry::global()))
        ++expected[i];
    pub.publish(image);
  }
  mesh.run();
  EXPECT_EQ(received, expected);
}

TEST_F(PeerTest, OracleHoldsWithCollapseAndChurn) {
  PeerConfig config;
  config.collapse_per_link = true;
  PeerMesh mesh{10, config, 5};
  workload::StockGenerator gen{{}, 17};
  auto& pub = mesh.add_publisher();

  std::vector<ConjunctiveFilter> filters;
  std::vector<PeerSubscriber*> subs;
  std::vector<int> received(20, 0), expected(20, 0);
  std::vector<bool> active(20, true);
  for (int i = 0; i < 20; ++i) {
    filters.push_back(gen.next_subscription());
    auto& sub = mesh.add_subscriber();
    sub.subscribe(filters[i],
                  [&received, i](const EventImage&) { ++received[i]; });
    subs.push_back(&sub);
  }
  mesh.run();

  util::Rng rng{31};
  for (int round = 0; round < 10; ++round) {
    // Churn: one random unsubscription per round.
    const std::size_t victim = rng.below(20);
    if (active[victim]) {
      subs[victim]->unsubscribe(filters[victim]);
      active[victim] = false;
      mesh.run();
    }
    for (int e = 0; e < 40; ++e) {
      const auto image = event::image_of(gen.next());
      for (int i = 0; i < 20; ++i)
        if (active[i] &&
            filters[i].matches(image, reflect::TypeRegistry::global()))
          ++expected[i];
      pub.publish(image);
    }
    mesh.run();
  }
  EXPECT_EQ(received, expected);
}

}  // namespace
}  // namespace cake::peer
