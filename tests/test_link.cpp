// Link-layer unit tests: two LinkManagers over a lossy/duplicating/jittery
// simulated network, asserting the channel contract the overlay builds on —
// exactly-once in-order delivery, bounded windows with the event-shed /
// control-never-shed policy, heartbeat failure detection at exactly N
// misses, stream resync after a cold receiver restart, and the broker's
// flap-damping on top of the detector.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cake/link/link.hpp"
#include "cake/routing/overlay.hpp"
#include "cake/routing/protocol.hpp"
#include "cake/sim/sim.hpp"

namespace cake {
namespace {

/// A tiny, distinguishable, fully framed control-plane payload: the link
/// layer never looks inside data frames (sequencing rides in the LinkTag),
/// but real frames keep wire::frame_tag() honest about what is and is not
/// link control.
sim::Network::Payload marked(std::uint64_t n) {
  return routing::encode(
      routing::Packet{routing::Detach{static_cast<sim::NodeId>(n)}});
}

std::uint64_t unmark(const sim::Network::Payload& payload) {
  return std::get<routing::Detach>(routing::decode(payload)).child;
}

link::LinkOptions reliable_options() {
  link::LinkOptions options;
  options.reliability = link::Reliability::Reliable;
  return options;
}

struct Harness {
  sim::Scheduler scheduler;
  runtime::SimTransport transport{scheduler};
  sim::Network network{scheduler, /*default_latency=*/1000};
};

TEST(Link, ExactlyOnceInOrderUnderDuplication) {
  Harness h;
  link::LinkManager a{1, h.network, h.transport, reliable_options(), 11};
  link::LinkManager b{2, h.network, h.transport, reliable_options(), 22};
  a.attach([](sim::NodeId, const sim::Network::Payload&) {});
  std::vector<std::uint64_t> got;
  b.attach([&](sim::NodeId, const sim::Network::Payload& p) {
    got.push_back(unmark(p));
  });

  // Every physical message is tripled — data, acks and nacks alike.
  h.network.set_interceptor([](sim::NodeId, sim::NodeId,
                               const sim::Network::Payload&) {
    return sim::Network::FaultAction{/*copies=*/3, /*extra_latency=*/0};
  });

  for (std::uint64_t i = 0; i < 50; ++i) a.send_control(2, marked(i));
  h.scheduler.run_until(1'000'000);

  ASSERT_EQ(got.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(got[i], i);
  EXPECT_GT(b.counters().duplicates_suppressed, 0u);
  EXPECT_GT(h.network.duplicated(), 0u);
}

TEST(Link, RetransmissionRecoversEverythingFromHeavyLoss) {
  Harness h;
  link::LinkManager a{1, h.network, h.transport, reliable_options(), 33};
  link::LinkManager b{2, h.network, h.transport, reliable_options(), 44};
  a.attach([](sim::NodeId, const sim::Network::Payload&) {});
  std::vector<std::uint64_t> got;
  b.attach([&](sim::NodeId, const sim::Network::Payload& p) {
    got.push_back(unmark(p));
  });

  h.network.set_loss_rate(0.4, /*seed=*/7);
  for (std::uint64_t i = 0; i < 100; ++i) a.send_control(2, marked(i));
  h.scheduler.run_until(20'000'000);

  ASSERT_EQ(got.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(got[i], i);
  EXPECT_GT(a.counters().retransmits, 0u);
  EXPECT_GT(h.network.dropped(), 0u);
}

TEST(Link, JitterReordersOnTheWireButReleasesInOrder) {
  Harness h;
  link::LinkManager a{1, h.network, h.transport, reliable_options(), 55};
  link::LinkManager b{2, h.network, h.transport, reliable_options(), 66};
  a.attach([](sim::NodeId, const sim::Network::Payload&) {});
  std::vector<std::uint64_t> got;
  b.attach([&](sim::NodeId, const sim::Network::Payload& p) {
    got.push_back(unmark(p));
  });

  // Deterministic sawtooth latency: successive frames overtake each other.
  std::uint64_t ticket = 0;
  h.network.set_interceptor([&ticket](sim::NodeId, sim::NodeId,
                                      const sim::Network::Payload&) {
    return sim::Network::FaultAction{1, (ticket++ % 7) * 1'700};
  });

  for (std::uint64_t i = 0; i < 50; ++i) a.send_control(2, marked(i));
  h.scheduler.run_until(2'000'000);

  ASSERT_EQ(got.size(), 50u);
  for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(got[i], i);
  EXPECT_GT(b.counters().reordered_held, 0u);
}

TEST(Link, WindowOverflowShedsEventsNewestFirstButNeverControl) {
  Harness h;
  link::LinkOptions options = reliable_options();
  options.window = 4;
  options.queue_limit = 2;
  link::LinkManager a{1, h.network, h.transport, options, 77};
  a.attach([](sim::NodeId, const sim::Network::Payload&) {});

  // Peer 2 does not exist yet: nothing is ever acknowledged, so the window
  // jams after 4 frames and the queue after 2 more.
  for (std::uint64_t i = 0; i < 10; ++i) a.send_event(2, marked(100 + i));
  EXPECT_EQ(a.counters().events_shed, 4u);
  EXPECT_EQ(a.in_flight(2), 6u);

  // Control is never shed: it queues past the limit instead.
  for (std::uint64_t i = 0; i < 10; ++i) a.send_control(2, marked(200 + i));
  EXPECT_EQ(a.counters().events_shed, 4u);
  EXPECT_EQ(a.in_flight(2), 16u);

  // Let the first transmissions evaporate against the absent peer before it
  // comes up; only retransmission can drain what was not shed, in
  // class-priority order: the window's in-flight events keep their original
  // sequences, then every queued control frame — control is never starved
  // behind events — then the surviving queued events.
  h.scheduler.run_until(50'000);
  link::LinkManager b{2, h.network, h.transport, options, 88};
  std::vector<std::uint64_t> got;
  b.attach([&](sim::NodeId, const sim::Network::Payload& p) {
    got.push_back(unmark(p));
  });
  h.scheduler.run_until(5'000'000);

  ASSERT_EQ(got.size(), 16u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(got[i], 100 + i);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(got[4 + i], 200 + i);
  for (std::uint64_t i = 0; i < 2; ++i) EXPECT_EQ(got[14 + i], 104 + i);
  EXPECT_EQ(a.in_flight(2), 0u);
  EXPECT_GT(a.counters().retransmits, 0u);
}

TEST(Link, PeerDeclaredDeadAtExactlyThreeMissesAndRevivedByTraffic) {
  Harness h;
  link::LinkOptions options = reliable_options();
  ASSERT_EQ(options.heartbeat_misses, 3u);
  const sim::Time interval = options.heartbeat_interval;

  link::LinkManager a{1, h.network, h.transport, options, 99};
  a.attach([](sim::NodeId, const sim::Network::Payload&) {});
  std::vector<sim::NodeId> deaths;
  a.set_peer_down([&](sim::NodeId peer) { deaths.push_back(peer); });
  a.watch(2);  // peer 2 is silent (it does not even exist yet)

  // Two full intervals of silence: two misses, still presumed alive.
  h.scheduler.run_until(2 * interval + interval / 2);
  EXPECT_TRUE(a.peer_alive(2));
  EXPECT_EQ(a.heartbeat_misses(2), 2u);
  EXPECT_TRUE(deaths.empty());

  // The third missed interval kills it — once.
  h.scheduler.run_until(3 * interval + interval / 2);
  EXPECT_FALSE(a.peer_alive(2));
  EXPECT_EQ(a.counters().peers_declared_dead, 1u);
  ASSERT_EQ(deaths.size(), 1u);
  EXPECT_EQ(deaths[0], 2u);

  // Any arrival from the peer is proof of life.
  link::LinkManager b{2, h.network, h.transport, reliable_options(), 111};
  b.attach([](sim::NodeId, const sim::Network::Payload&) {});
  b.send_control(1, marked(0));
  h.scheduler.run_until(h.scheduler.now() + 10'000);
  EXPECT_TRUE(a.peer_alive(2));
  EXPECT_EQ(a.heartbeat_misses(2), 0u);
}

TEST(Link, HeartbeatExchangeKeepsAnIdleLinkAlive) {
  Harness h;
  link::LinkManager a{1, h.network, h.transport, reliable_options(), 123};
  link::LinkManager b{2, h.network, h.transport, reliable_options(), 321};
  a.attach([](sim::NodeId, const sim::Network::Payload&) {});
  b.attach([](sim::NodeId, const sim::Network::Payload&) {});
  a.watch(2);

  // No data ever flows; pings and pongs alone must keep the verdict alive.
  h.scheduler.run_until(20 * reliable_options().heartbeat_interval);
  EXPECT_TRUE(a.peer_alive(2));
  EXPECT_EQ(a.counters().peers_declared_dead, 0u);
  EXPECT_GT(a.counters().heartbeats_sent, 0u);  // pings
  EXPECT_GT(b.counters().heartbeats_sent, 0u);  // pongs
}

TEST(Link, RedirectMovesUnackedAndQueuedFramesInOrder) {
  Harness h;
  link::LinkOptions options = reliable_options();
  options.window = 4;
  link::LinkManager a{1, h.network, h.transport, options, 222};
  a.attach([](sim::NodeId, const sim::Network::Payload&) {});

  // Six controls to a dead peer: four jam the window, two queue behind it.
  for (std::uint64_t i = 0; i < 6; ++i) a.send_control(2, marked(i));
  EXPECT_EQ(a.in_flight(2), 6u);

  // Re-parent: node 3 inherits the whole stream, oldest first.
  link::LinkManager c{3, h.network, h.transport, options, 333};
  std::vector<std::uint64_t> got;
  c.attach([&](sim::NodeId, const sim::Network::Payload& p) {
    got.push_back(unmark(p));
  });
  a.redirect(2, 3);
  EXPECT_EQ(a.in_flight(2), 0u);

  h.scheduler.run_until(2'000'000);
  ASSERT_EQ(got.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(got[i], i);
}

TEST(Link, ReceiverColdRestartForcesStreamResyncWithoutDuplicates) {
  Harness h;
  link::LinkManager a{1, h.network, h.transport, reliable_options(), 444};
  link::LinkManager b{2, h.network, h.transport, reliable_options(), 555};
  a.attach([](sim::NodeId, const sim::Network::Payload&) {});
  std::vector<std::uint64_t> got;
  const auto deliver = [&](sim::NodeId, const sim::Network::Payload& p) {
    got.push_back(unmark(p));
  };
  b.attach(deliver);

  for (std::uint64_t i = 0; i < 5; ++i) a.send_control(2, marked(i));
  h.scheduler.run_until(500'000);
  ASSERT_EQ(got.size(), 5u);

  // Cold restart: the receiver forgets every stream. The sender's next
  // frames land mid-stream on a blank receiver, which answers with a
  // resync NACK; the sender restarts under a fresh session and nothing is
  // delivered twice.
  b.reset();
  b.attach(deliver);
  for (std::uint64_t i = 5; i < 10; ++i) a.send_control(2, marked(i));
  h.scheduler.run_until(2'000'000);

  ASSERT_EQ(got.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
  EXPECT_GE(a.counters().stream_resets, 1u);
}

TEST(Link, BestEffortModeBypassesTheWholeMachine) {
  Harness h;
  link::LinkOptions options;  // BestEffort default
  link::LinkManager a{1, h.network, h.transport, options, 666};
  link::LinkManager b{2, h.network, h.transport, options, 777};
  a.attach([](sim::NodeId, const sim::Network::Payload&) {});
  std::vector<std::uint64_t> got;
  b.attach([&](sim::NodeId, const sim::Network::Payload& p) {
    got.push_back(unmark(p));
  });

  for (std::uint64_t i = 0; i < 10; ++i) a.send_event(2, marked(i));
  h.scheduler.run_until(100'000);

  ASSERT_EQ(got.size(), 10u);
  const link::LinkCounters& c = a.counters();
  EXPECT_EQ(c.data_sent, 0u);  // nothing was sequenced
  EXPECT_EQ(c.retransmits + c.acks_sent + c.heartbeats_sent, 0u);
}

link::LinkOptions credit_options() {
  link::LinkOptions options = reliable_options();
  options.credit = true;
  options.credit_window = 8;
  return options;
}

TEST(LinkCredit, ExhaustedBudgetQueuesEventsAndGrantResumesInOrder) {
  Harness h;
  link::LinkManager a{1, h.network, h.transport, credit_options(), 12};
  link::LinkManager b{2, h.network, h.transport, credit_options(), 21};
  a.attach([](sim::NodeId, const sim::Network::Payload&) {});
  std::vector<std::uint64_t> got;
  b.attach([&](sim::NodeId, const sim::Network::Payload& p) {
    got.push_back(unmark(p));
  });

  // The consumer stalls before any traffic flows: the sender gets only its
  // implicit initial budget of credit_window frames, then must queue —
  // never blind-fire into retransmit storms, never shed.
  b.set_credit_paused(true);
  for (std::uint64_t i = 0; i < 20; ++i) a.send_event(2, marked(i));
  h.scheduler.run_until(2'000'000);

  EXPECT_EQ(got.size(), 8u);
  EXPECT_TRUE(a.credit_starved(2));
  EXPECT_EQ(a.queued_events(2), 12u);
  EXPECT_GT(a.counters().credit_stalls, 0u);
  EXPECT_EQ(a.counters().events_shed, 0u);

  // Recovery re-grants immediately; the backlog drains in order, complete.
  b.set_credit_paused(false);
  h.scheduler.run_until(4'000'000);
  ASSERT_EQ(got.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(got[i], i);
  EXPECT_FALSE(a.credit_starved(2));
  EXPECT_EQ(a.queued_events(2), 0u);
  EXPECT_GT(b.counters().credits_sent, 0u);
}

TEST(LinkCredit, ControlBypassesAnExhaustedBudget) {
  Harness h;
  link::LinkManager a{1, h.network, h.transport, credit_options(), 34};
  link::LinkManager b{2, h.network, h.transport, credit_options(), 43};
  a.attach([](sim::NodeId, const sim::Network::Payload&) {});
  std::vector<std::uint64_t> got;
  b.attach([&](sim::NodeId, const sim::Network::Payload& p) {
    got.push_back(unmark(p));
  });

  b.set_credit_paused(true);
  for (std::uint64_t i = 0; i < 12; ++i) a.send_event(2, marked(100 + i));
  h.scheduler.run_until(1'000'000);
  ASSERT_EQ(got.size(), 8u);  // budget exhausted, 4 events parked

  // Control admitted past the exhausted budget: a stalled consumer's
  // protocol stack (renewals, acks, heartbeats) keeps breathing.
  for (std::uint64_t i = 0; i < 5; ++i) a.send_control(2, marked(200 + i));
  h.scheduler.run_until(2'000'000);

  ASSERT_EQ(got.size(), 13u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(got[i], 100 + i);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(got[8 + i], 200 + i);
  EXPECT_EQ(a.queued_events(2), 4u);
}

TEST(LinkCredit, DisabledCreditNeverEmitsGrantsOrStalls) {
  Harness h;
  link::LinkManager a{1, h.network, h.transport, reliable_options(), 56};
  link::LinkManager b{2, h.network, h.transport, reliable_options(), 65};
  a.attach([](sim::NodeId, const sim::Network::Payload&) {});
  std::vector<std::uint64_t> got;
  b.attach([&](sim::NodeId, const sim::Network::Payload& p) {
    got.push_back(unmark(p));
  });

  b.set_credit_paused(true);  // documented no-op with credit off
  for (std::uint64_t i = 0; i < 100; ++i) a.send_event(2, marked(i));
  h.scheduler.run_until(5'000'000);

  ASSERT_EQ(got.size(), 100u);
  EXPECT_EQ(a.counters().credit_stalls, 0u);
  EXPECT_EQ(b.counters().credits_sent, 0u);
}

TEST(Link, FlappingAncestryDampsReparentChurn) {
  // A leaf broker whose entire ancestor chain is dead cycles parent ->
  // grandparent -> parent -> ... Each hop doubles the flap-damping gate, so
  // churn grows logarithmically in time where an undamped broker would
  // re-parent once per detection period (~600k us: 3 misses x 200k).
  routing::OverlayConfig oc;
  oc.stage_counts = {1, 1, 1};
  oc.link.reliability = link::Reliability::Reliable;
  routing::Overlay overlay{oc};

  overlay.crash(0);  // root
  overlay.crash(1);  // the leaf's parent
  overlay.scheduler().run_until(6'000'000);

  const routing::Broker* leaf = overlay.brokers()[2].get();
  const std::uint64_t reparents = leaf->stats().reparents;
  // Undamped: ~10 re-parents in 6M us. Damped: detection + 250k<<streak
  // gates admit at most a handful.
  EXPECT_GE(reparents, 2u);
  EXPECT_LE(reparents, 5u);
  EXPECT_EQ(overlay.total_reparents(), reparents);
  // Still a live process: the damping gate defers, it never abandons.
  EXPECT_FALSE(leaf->crashed());
}

}  // namespace
}  // namespace cake
