// Tests for the Thompson-NFA regex engine and its Op::Regex integration
// into the subscription language (§2.1's "regular expressions" rung).
#include "cake/util/regex.hpp"

#include <gtest/gtest.h>

#include "cake/filter/constraint.hpp"

namespace cake::util {
namespace {

struct MatchCase {
  const char* pattern;
  const char* subject;
  bool expected;
};

class RegexTable : public ::testing::TestWithParam<MatchCase> {};

TEST_P(RegexTable, AnchoredMatch) {
  const MatchCase& c = GetParam();
  EXPECT_EQ(Regex{c.pattern}.matches(c.subject), c.expected)
      << '"' << c.pattern << "\" vs \"" << c.subject << '"';
}

INSTANTIATE_TEST_SUITE_P(
    Literals, RegexTable,
    ::testing::Values(MatchCase{"abc", "abc", true},
                      MatchCase{"abc", "abx", false},
                      MatchCase{"abc", "ab", false},
                      MatchCase{"abc", "abcd", false},  // anchored
                      MatchCase{"", "", true},
                      MatchCase{"", "a", false},
                      MatchCase{"a", "", false}));

INSTANTIATE_TEST_SUITE_P(
    Metacharacters, RegexTable,
    ::testing::Values(MatchCase{"a.c", "abc", true},
                      MatchCase{"a.c", "axc", true},
                      MatchCase{"a.c", "ac", false},
                      MatchCase{"a*", "", true},
                      MatchCase{"a*", "aaaa", true},
                      MatchCase{"a*", "aab", false},
                      MatchCase{"a+", "", false},
                      MatchCase{"a+", "aaa", true},
                      MatchCase{"a?b", "ab", true},
                      MatchCase{"a?b", "b", true},
                      MatchCase{"a?b", "aab", false},
                      MatchCase{".*", "anything at all", true},
                      MatchCase{".*foo.*", "xxfooyy", true},
                      MatchCase{".*foo.*", "xxfoyy", false}));

INSTANTIATE_TEST_SUITE_P(
    Alternation, RegexTable,
    ::testing::Values(MatchCase{"cat|dog", "cat", true},
                      MatchCase{"cat|dog", "dog", true},
                      MatchCase{"cat|dog", "cow", false},
                      MatchCase{"a(b|c)d", "abd", true},
                      MatchCase{"a(b|c)d", "acd", true},
                      MatchCase{"a(b|c)d", "ad", false},
                      MatchCase{"(ab)+", "ababab", true},
                      MatchCase{"(ab)+", "aba", false},
                      MatchCase{"x(y|)z", "xyz", true},
                      MatchCase{"x(y|)z", "xz", true},
                      MatchCase{"a|", "a", true},
                      MatchCase{"a|", "", true}));

INSTANTIATE_TEST_SUITE_P(
    Classes, RegexTable,
    ::testing::Values(MatchCase{"[abc]", "b", true},
                      MatchCase{"[abc]", "d", false},
                      MatchCase{"[a-z]+", "hello", true},
                      MatchCase{"[a-z]+", "Hello", false},
                      MatchCase{"[a-zA-Z0-9]*", "Az9", true},
                      MatchCase{"[^0-9]+", "abc", true},
                      MatchCase{"[^0-9]+", "ab3", false},
                      MatchCase{"[-a]", "-", true},   // leading '-' literal
                      MatchCase{"[a-]", "-", true},   // trailing '-' literal
                      MatchCase{"title-[0-9]+-.*", "title-12-0-3-1", true},
                      MatchCase{"title-[0-9]+-.*", "titleX-12", false}));

INSTANTIATE_TEST_SUITE_P(
    Escapes, RegexTable,
    ::testing::Values(MatchCase{"a\\.c", "a.c", true},
                      MatchCase{"a\\.c", "abc", false},
                      MatchCase{"a\\*b", "a*b", true},
                      MatchCase{"\\\\", "\\", true},
                      MatchCase{"[\\]]", "]", true},
                      MatchCase{"conf\\-[0-9]", "conf-7", true}));

TEST(Regex, SyntaxErrorsThrow) {
  EXPECT_THROW(Regex{"("}, RegexError);
  EXPECT_THROW(Regex{")"}, RegexError);
  EXPECT_THROW(Regex{"a)"}, RegexError);
  EXPECT_THROW(Regex{"(a"}, RegexError);
  EXPECT_THROW(Regex{"*a"}, RegexError);
  EXPECT_THROW(Regex{"|*"}, RegexError);
  EXPECT_THROW(Regex{"[abc"}, RegexError);
  EXPECT_THROW(Regex{"[]"}, RegexError);
  EXPECT_THROW(Regex{"[z-a]"}, RegexError);
  EXPECT_THROW(Regex{"a\\"}, RegexError);
  EXPECT_THROW(Regex{"]"}, RegexError);
}

TEST(Regex, NoPathologicalBacktracking) {
  // (a*)*b against a^40: catastrophic for backtrackers, linear here.
  const Regex regex{"(a*)*b"};
  const std::string subject(40, 'a');
  EXPECT_FALSE(regex.matches(subject));
  EXPECT_TRUE(regex.matches(subject + 'b'));
}

TEST(Regex, CachedReturnsSameCompilation) {
  const Regex& a = Regex::cached("ab+c");
  const Regex& b = Regex::cached("ab+c");
  EXPECT_EQ(&a, &b);
  EXPECT_TRUE(a.matches("abbc"));
  EXPECT_THROW((void)Regex::cached("("), RegexError);
}

// ---- Op::Regex in the subscription language ---------------------------------

TEST(RegexOp, MatchesStringAttributes) {
  using filter::Op;
  const filter::AttributeConstraint c{"title", Op::Regex,
                                      value::Value{"title-0-.*"}};
  const event::EventImage hit{"Publication",
                              {{"title", value::Value{"title-0-3-1-0"}}}};
  const event::EventImage miss{"Publication",
                               {{"title", value::Value{"title-1-3-1-0"}}}};
  EXPECT_TRUE(c.matches(hit));
  EXPECT_FALSE(c.matches(miss));
}

TEST(RegexOp, NonStringValuesNeverMatch) {
  using filter::Op;
  EXPECT_FALSE(applies(Op::Regex, value::Value{42}, value::Value{"4.*"}));
  EXPECT_FALSE(applies(Op::Regex, value::Value{"42"}, value::Value{42}));
}

TEST(RegexOp, InvalidPatternMatchesNothingInsteadOfThrowing) {
  using filter::Op;
  EXPECT_FALSE(applies(Op::Regex, value::Value{"x"}, value::Value{"("}));
}

TEST(RegexOp, CoveringRules) {
  using filter::AttributeConstraint;
  using filter::Op;
  using value::Value;
  const AttributeConstraint pattern{"t", Op::Regex, Value{"abc.*"}};
  const AttributeConstraint same{"t", Op::Regex, Value{"abc.*"}};
  const AttributeConstraint other{"t", Op::Regex, Value{"abd.*"}};
  const AttributeConstraint matching_point{"t", Op::Eq, Value{"abcde"}};
  const AttributeConstraint non_matching_point{"t", Op::Eq, Value{"xyz"}};
  const AttributeConstraint any{"t", Op::Any, {}};
  const AttributeConstraint exists{"t", Op::Exists, {}};

  EXPECT_TRUE(covers(pattern, same));
  EXPECT_FALSE(covers(pattern, other));
  EXPECT_TRUE(covers(pattern, matching_point));
  EXPECT_FALSE(covers(pattern, non_matching_point));
  EXPECT_TRUE(covers(any, pattern));
  EXPECT_TRUE(covers(exists, pattern));
  EXPECT_FALSE(covers(pattern, any));
  // Ne v covers a pattern that rejects v.
  const AttributeConstraint ne{"t", Op::Ne, Value{"zzz"}};
  EXPECT_TRUE(covers(ne, pattern));
  const AttributeConstraint ne_hit{"t", Op::Ne, Value{"abcq"}};
  EXPECT_FALSE(covers(ne_hit, pattern));
}

TEST(RegexOp, ToStringRendering) {
  const filter::AttributeConstraint c{"title", filter::Op::Regex,
                                      value::Value{"a.*"}};
  EXPECT_EQ(c.to_string(), "(title, \"a.*\", ~)");
}

TEST(RegexOp, WireRoundTrip) {
  const filter::AttributeConstraint c{"title", filter::Op::Regex,
                                      value::Value{"[a-z]+"}};
  wire::Writer w;
  c.encode(w);
  wire::Reader r{w.bytes()};
  EXPECT_EQ(filter::AttributeConstraint::decode(r), c);
}

}  // namespace
}  // namespace cake::util
