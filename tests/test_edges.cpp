// Small edge-case battery: API misuse paths and representation corners
// that the larger suites route around.
#include <gtest/gtest.h>

#include <cmath>

#include "cake/core/event_system.hpp"
#include "cake/peer/peer.hpp"
#include "cake/workload/generators.hpp"

namespace cake {
namespace {

using filter::FilterBuilder;
using filter::Op;
using value::Value;

struct Unregistered final : event::Event {
  [[nodiscard]] const reflect::TypeInfo& type() const noexcept override {
    return reflect::TypeRegistry::global().get("Stock");  // never reached
  }
};

TEST(Edges, TypedSubscribeToUnregisteredTypeThrows) {
  workload::ensure_types_registered();
  core::EventSystem::Config config;
  config.overlay.stage_counts = {1, 2};
  core::EventSystem sys{config};
  auto& sub = sys.make_subscriber();
  EXPECT_THROW(sub.subscribe<Unregistered>(FilterBuilder{}.build(),
                                           [](const Unregistered&) {}),
               reflect::ReflectError);
}

TEST(Edges, KindNamesAreStable) {
  using value::Kind;
  EXPECT_EQ(value::to_string(Kind::Null), "null");
  EXPECT_EQ(value::to_string(Kind::Bool), "bool");
  EXPECT_EQ(value::to_string(Kind::Int), "int");
  EXPECT_EQ(value::to_string(Kind::Double), "double");
  EXPECT_EQ(value::to_string(Kind::String), "string");
}

TEST(Edges, NanDoubleSurvivesTheWire) {
  wire::Writer w;
  w.f64(std::nan(""));
  w.f64(std::numeric_limits<double>::infinity());
  wire::Reader r{w.bytes()};
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_TRUE(std::isinf(r.f64()));
}

TEST(Edges, NanNeverMatchesOrderedConstraints) {
  workload::ensure_types_registered();
  const event::EventImage image{
      "Stock", {{"price", Value{std::nan("")}}}};
  EXPECT_FALSE(filter::AttributeConstraint({"price", Op::Lt, Value{10.0}})
                   .matches(image));
  EXPECT_FALSE(filter::AttributeConstraint({"price", Op::Ge, Value{10.0}})
                   .matches(image));
  // Existence still holds: the attribute is present.
  EXPECT_TRUE(filter::AttributeConstraint({"price", Op::Exists, {}})
                  .matches(image));
}

TEST(Edges, RngFullSignedRange) {
  util::Rng rng{9};
  // span == 0 internally (full 64-bit range): must not divide by zero.
  for (int i = 0; i < 10; ++i) {
    (void)rng.between(std::numeric_limits<std::int64_t>::min(),
                      std::numeric_limits<std::int64_t>::max());
  }
  SUCCEED();
}

TEST(Edges, TrieRemoveThenReAddMatchesAgain) {
  workload::ensure_types_registered();
  index::TrieIndex trie{reflect::TypeRegistry::global()};
  const auto f =
      FilterBuilder{"Stock"}.where("symbol", Op::Eq, Value{"Foo"}).build();
  const auto id1 = trie.add(f);
  trie.remove(id1);
  const auto id2 = trie.add(f);
  EXPECT_NE(id1, id2);
  std::vector<index::FilterId> out;
  trie.match(event::image_of(workload::Stock{"Foo", 1.0, 1}), out);
  EXPECT_EQ(out, std::vector<index::FilterId>{id2});
}

class PeerEngines : public ::testing::TestWithParam<index::Engine> {};

TEST_P(PeerEngines, MeshDeliversUnderEveryEngine) {
  workload::ensure_types_registered();
  peer::PeerConfig config;
  config.engine = GetParam();
  peer::PeerMesh mesh{6, config, 4};
  auto& sub = mesh.add_subscriber(5);
  auto& pub = mesh.add_publisher(0);
  int count = 0;
  sub.subscribe(FilterBuilder{"Stock"}
                    .where("price", Op::Lt, Value{50.0})
                    .build(),
                [&](const event::EventImage&) { ++count; });
  mesh.run();
  pub.publish(event::image_of(workload::Stock{"A", 10.0, 1}));
  pub.publish(event::image_of(workload::Stock{"B", 90.0, 1}));
  mesh.run();
  EXPECT_EQ(count, 1);
}

INSTANTIATE_TEST_SUITE_P(Engines, PeerEngines,
                         ::testing::Values(index::Engine::Naive,
                                           index::Engine::Counting,
                                           index::Engine::Trie,
                                           index::Engine::ShardedCounting),
                         [](const auto& info) {
                           switch (info.param) {
                             case index::Engine::Naive: return "Naive";
                             case index::Engine::Counting: return "Counting";
                             case index::Engine::Trie: return "Trie";
                             default: return "ShardedCounting";
                           }
                         });

TEST(Edges, EmptyOverlayRunsToQuiescence) {
  routing::OverlayConfig config;
  config.stage_counts = {1};
  routing::Overlay overlay{config};
  EXPECT_EQ(overlay.run(), 0u);
  EXPECT_TRUE(overlay.root().table().empty());
}

TEST(Edges, PublishWithNoSubscribersDiesAtTheRoot) {
  workload::ensure_types_registered();
  routing::OverlayConfig config;
  config.stage_counts = {1, 3};
  routing::Overlay overlay{config};
  auto& pub = overlay.add_publisher();
  pub.advertise(workload::BiblioGenerator::schema(3));
  overlay.run();
  workload::BiblioGenerator gen{{}, 1};
  for (int i = 0; i < 50; ++i) pub.publish(gen.next_event());
  overlay.run();
  EXPECT_EQ(overlay.root().stats().events_received, 50u);
  EXPECT_EQ(overlay.root().stats().events_forwarded, 0u);
  for (routing::Broker* leaf : overlay.brokers_at(1))
    EXPECT_EQ(leaf->stats().events_received, 0u);
}

}  // namespace
}  // namespace cake
