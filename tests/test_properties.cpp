// Cross-cutting property tests: algebraic laws of the covering relation
// and weakening pipeline on randomized filters, plus whole-system safety
// under every matching engine.
#include <gtest/gtest.h>

#include "cake/routing/overlay.hpp"
#include "cake/util/rng.hpp"
#include "cake/workload/generators.hpp"

namespace cake {
namespace {

using event::EventImage;
using filter::ConjunctiveFilter;
using filter::FilterBuilder;
using filter::Op;
using value::Value;

const reflect::TypeRegistry& reg() { return reflect::TypeRegistry::global(); }

ConjunctiveFilter random_filter(util::Rng& rng) {
  static const char* symbols[] = {"AA", "AB", "B", "C"};
  static const Op ops[] = {Op::Eq, Op::Ne,     Op::Lt,  Op::Le, Op::Gt,
                           Op::Ge, Op::Prefix, Op::Any, Op::Exists};
  FilterBuilder b{rng.chance(0.8) ? "Stock" : "", rng.chance(0.5)};
  if (rng.chance(0.8)) {
    b.where("symbol", rng.chance(0.6) ? Op::Eq : Op::Prefix,
            Value{symbols[rng.below(4)]});
  }
  if (rng.chance(0.8)) {
    b.where("price", ops[rng.below(std::size(ops))],
            Value{static_cast<double>(rng.between(0, 10))});
  }
  return b.build();
}

// Covering is reflexive on everything, and transitive: the guarantees the
// subscription-placement search and the collapse machinery lean on.
TEST(CoveringLaws, Reflexive) {
  workload::ensure_types_registered();
  util::Rng rng{808};
  for (int trial = 0; trial < 2000; ++trial) {
    const ConjunctiveFilter f = random_filter(rng);
    EXPECT_TRUE(covers(f, f, reg())) << f.to_string();
  }
}

TEST(CoveringLaws, Transitive) {
  workload::ensure_types_registered();
  util::Rng rng{809};
  int chains = 0;
  for (int trial = 0; trial < 20'000; ++trial) {
    const ConjunctiveFilter a = random_filter(rng);
    const ConjunctiveFilter b = random_filter(rng);
    const ConjunctiveFilter c = random_filter(rng);
    if (!covers(a, b, reg()) || !covers(b, c, reg())) continue;
    ++chains;
    EXPECT_TRUE(covers(a, c, reg()))
        << a.to_string() << " ⊒ " << b.to_string() << " ⊒ " << c.to_string();
  }
  EXPECT_GT(chains, 50);  // the sweep must actually find chains
}

// Weakening is idempotent per stage and monotone across stages.
TEST(WeakenLaws, IdempotentPerStage) {
  workload::ensure_types_registered();
  workload::BiblioGenerator gen{{}, 810};
  const auto schema = workload::BiblioGenerator::schema();
  for (int trial = 0; trial < 300; ++trial) {
    const ConjunctiveFilter f = gen.next_subscription(trial % 4);
    for (std::size_t stage = 0; stage < schema.stages(); ++stage) {
      const ConjunctiveFilter once = weaken::weaken_filter(f, schema, stage);
      const ConjunctiveFilter twice = weaken::weaken_filter(once, schema, stage);
      EXPECT_EQ(once, twice) << "stage " << stage;
    }
  }
}

TEST(WeakenLaws, StandardFormIsIdempotent) {
  workload::ensure_types_registered();
  workload::BiblioGenerator gen{{}, 811};
  const auto& type = reg().get("Publication");
  for (int trial = 0; trial < 300; ++trial) {
    const ConjunctiveFilter f = gen.next_subscription(trial % 4);
    const ConjunctiveFilter once = f.standard_form(type);
    EXPECT_EQ(once, once.standard_form(type));
  }
}

// The end-to-end safety property must hold under every matching engine.
class EngineSafety : public ::testing::TestWithParam<index::Engine> {};

TEST_P(EngineSafety, DeliveredSetEqualsOracleSet) {
  workload::ensure_types_registered();
  routing::OverlayConfig config;
  config.stage_counts = {1, 3, 9};
  config.broker.engine = GetParam();
  routing::Overlay overlay{config};
  auto& pub = overlay.add_publisher();
  pub.advertise(workload::BiblioGenerator::schema());
  overlay.run();

  workload::BiblioGenerator gen{{}, 812};
  constexpr int kSubs = 25;
  std::vector<ConjunctiveFilter> filters;
  std::vector<int> received(kSubs, 0), expected(kSubs, 0);
  for (int i = 0; i < kSubs; ++i) {
    filters.push_back(gen.next_subscription(i % 3));
    overlay.add_subscriber().subscribe(
        filters[i], [&received, i](const EventImage&) { ++received[i]; });
  }
  overlay.run();
  for (int e = 0; e < 400; ++e) {
    const EventImage image = gen.next_event();
    for (int i = 0; i < kSubs; ++i)
      if (filters[i].matches(image, reg())) ++expected[i];
    pub.publish(image);
  }
  overlay.run();
  EXPECT_EQ(received, expected);
}

INSTANTIATE_TEST_SUITE_P(Engines, EngineSafety,
                         ::testing::Values(index::Engine::Naive,
                                           index::Engine::Counting,
                                           index::Engine::Trie,
                                           index::Engine::ShardedCounting),
                         [](const auto& info) {
                           switch (info.param) {
                             case index::Engine::Naive: return "Naive";
                             case index::Engine::Counting: return "Counting";
                             case index::Engine::Trie: return "Trie";
                             default: return "ShardedCounting";
                           }
                         });

// Re-advertising an event class updates the weakening of NEW subscriptions
// without breaking live ones.
TEST(Advertisement, ReAdvertiseChangesWeakeningForNewSubscriptions) {
  workload::ensure_types_registered();
  routing::OverlayConfig config;
  config.stage_counts = {1, 2};
  routing::Overlay overlay{config};
  auto& pub = overlay.add_publisher();
  pub.advertise(workload::BiblioGenerator::schema(3));
  overlay.run();

  auto& early = overlay.add_subscriber();
  int early_count = 0, late_count = 0;
  workload::BiblioGenerator gen{{}, 813};
  const ConjunctiveFilter f = gen.next_subscription();
  early.subscribe(f, [&](const EventImage&) { ++early_count; });
  overlay.run();

  // New schema: weaken nothing anywhere (all four attributes everywhere).
  pub.advertise(weaken::StageSchema{
      "Publication",
      {{"year", "conference", "author", "title"},
       {"year", "conference", "author", "title"},
       {"year", "conference", "author", "title"}}});
  overlay.run();

  auto& late = overlay.add_subscriber();
  late.subscribe(f, [&](const EventImage&) { ++late_count; });
  overlay.run();

  int expected = 0;
  for (int e = 0; e < 300; ++e) {
    const EventImage image = gen.next_event();
    if (f.matches(image, reg())) ++expected;
    pub.publish(image);
  }
  overlay.run();
  EXPECT_EQ(early_count, expected);
  EXPECT_EQ(late_count, expected);
}

}  // namespace
}  // namespace cake
