// Unit tests for workload generators and their statistical knobs.
#include "cake/workload/generators.hpp"

#include <gtest/gtest.h>

#include <set>

namespace cake::workload {
namespace {

using filter::Op;

TEST(Biblio, EventsHaveAllFourAttributesInSchemaOrder) {
  BiblioGenerator gen{{}, 1};
  const event::EventImage image = gen.next_event();
  EXPECT_EQ(image.type_name(), "Publication");
  ASSERT_EQ(image.attributes().size(), 4u);
  EXPECT_EQ(image.attributes()[0].name, "year");
  EXPECT_EQ(image.attributes()[1].name, "conference");
  EXPECT_EQ(image.attributes()[2].name, "author");
  EXPECT_EQ(image.attributes()[3].name, "title");
}

TEST(Biblio, DeterministicUnderSeed) {
  BiblioGenerator a{{}, 9}, b{{}, 9};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next_event(), b.next_event());
}

TEST(Biblio, DifferentSeedsDiffer) {
  BiblioGenerator a{{}, 1}, b{{}, 2};
  int same = 0;
  for (int i = 0; i < 50; ++i) same += (a.next_event() == b.next_event());
  EXPECT_LT(same, 25);
}

TEST(Biblio, ValuesStayInConfiguredUniverse) {
  BiblioConfig config;
  config.years = 3;
  config.conferences = 2;
  config.authors = 4;
  BiblioGenerator gen{config, 3};
  for (int i = 0; i < 200; ++i) {
    const auto image = gen.next_event();
    const auto year = image.find("year")->as_int();
    EXPECT_GE(year, 1995);
    EXPECT_LT(year, 1995 + 3);
  }
}

TEST(Biblio, TitleIsBoundToItsCombination) {
  BiblioGenerator gen{{}, 4};
  for (int i = 0; i < 100; ++i) {
    const auto image = gen.next_event();
    const std::string title = image.find("title")->as_string();
    const auto year = image.find("year")->as_int();
    // title-<y>-<c>-<a>-<k> where y is the year rank.
    EXPECT_EQ(title.rfind("title-" + std::to_string(year - 1995) + "-", 0), 0u)
        << title;
  }
}

TEST(Biblio, SubscriptionsShareTheEventDistribution) {
  BiblioGenerator gen{{}, 5};
  const auto f = gen.next_subscription();
  EXPECT_EQ(f.type().name, "Publication");
  ASSERT_EQ(f.constraints().size(), 4u);
  for (const auto& c : f.constraints()) EXPECT_EQ(c.op, Op::Eq);
}

TEST(Biblio, WildcardKnobDropsLeastGeneralFirst) {
  BiblioGenerator gen{{}, 6};
  const auto f1 = gen.next_subscription(1);
  EXPECT_EQ(f1.constraints()[3].op, Op::Any);   // title
  EXPECT_EQ(f1.constraints()[2].op, Op::Eq);    // author still set
  const auto f3 = gen.next_subscription(3);
  EXPECT_EQ(f3.constraints()[1].op, Op::Any);   // conference
  EXPECT_EQ(f3.constraints()[0].op, Op::Eq);    // year survives
  const auto f4 = gen.next_subscription(4);
  EXPECT_EQ(f4.constraints()[0].op, Op::Any);   // everything wildcarded
}

TEST(Biblio, HighTitleSkewYieldsHighConditionalMatchRate) {
  // The knob behind the paper's MR ≈ 0.87: P(title matches | y,c,a match).
  BiblioGenerator gen{{}, 7};
  util::Zipf titles{BiblioConfig{}.titles_per_combo, BiblioConfig{}.title_skew};
  double collision = 0.0;
  for (std::size_t k = 0; k < titles.size(); ++k)
    collision += titles.pmf(k) * titles.pmf(k);
  EXPECT_GT(collision, 0.8);
  EXPECT_LT(collision, 0.95);
}

TEST(Stock, PricesFollowPositiveRandomWalk) {
  StockGenerator gen{{}, 8};
  for (int i = 0; i < 500; ++i) {
    const Stock quote = gen.next();
    EXPECT_GT(quote.price(), 0.0);
    EXPECT_GE(quote.volume(), 100);
    EXPECT_LE(quote.volume(), 100'000);
    EXPECT_EQ(quote.symbol().rfind("SYM", 0), 0u);
  }
}

TEST(Stock, SymbolsDrawnFromConfiguredUniverse) {
  StockConfig config;
  config.symbols = 5;
  StockGenerator gen{config, 9};
  std::set<std::string> seen;
  for (int i = 0; i < 300; ++i) seen.insert(gen.next().symbol());
  EXPECT_LE(seen.size(), 5u);
  EXPECT_GE(seen.size(), 3u);  // Zipf(1.0) over 5 symbols covers most
}

TEST(Stock, SubscriptionShapeMatchesPaperExample) {
  StockGenerator gen{{}, 10};
  const auto f = gen.next_subscription();
  EXPECT_EQ(f.type().name, "Stock");
  ASSERT_EQ(f.constraints().size(), 2u);
  EXPECT_EQ(f.constraints()[0].name, "symbol");
  EXPECT_EQ(f.constraints()[0].op, Op::Eq);
  EXPECT_EQ(f.constraints()[1].name, "price");
  EXPECT_EQ(f.constraints()[1].op, Op::Lt);
}

TEST(Auctions, MixMatchesConfiguredFractions) {
  AuctionConfig config;
  config.vehicle_fraction = 0.5;
  config.car_fraction = 0.5;
  AuctionGenerator gen{config, 11};
  int cars = 0, vehicles = 0, plain = 0;
  for (int i = 0; i < 2000; ++i) {
    const auto e = gen.next();
    if (dynamic_cast<const CarAuction*>(e.get())) ++cars;
    else if (dynamic_cast<const VehicleAuction*>(e.get())) ++vehicles;
    else ++plain;
  }
  EXPECT_NEAR(plain, 1000, 100);
  EXPECT_NEAR(vehicles, 500, 80);
  EXPECT_NEAR(cars, 500, 80);
}

TEST(Auctions, EveryEventConformsToAuction) {
  AuctionGenerator gen{{}, 12};
  const auto& base = reflect::TypeRegistry::global().get("Auction");
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(gen.next()->type().conforms_to(base));
  }
}

TEST(Schemas, BiblioSchemaDropsTitleFirst) {
  const auto schema = BiblioGenerator::schema();
  EXPECT_EQ(schema.type_name(), "Publication");
  EXPECT_EQ(schema.stages(), 4u);
  EXPECT_EQ(schema.attributes_at(1).back(), "author");
  EXPECT_EQ(schema.attributes_at(3), std::vector<std::string>{"year"});
}

TEST(Schemas, StockSchemaKeepsSymbolLongest) {
  const auto schema = StockGenerator::schema();
  EXPECT_EQ(schema.attributes_at(2), std::vector<std::string>{"symbol"});
}

}  // namespace
}  // namespace cake::workload
