// Unit + oracle tests for matching engines: the counting index must agree
// exactly with the naive Fig. 6 table on randomized workloads.
#include "cake/index/index.hpp"

#include <gtest/gtest.h>

#include "cake/index/sharded.hpp"

#include <algorithm>

#include "cake/event/event.hpp"
#include "cake/util/rng.hpp"
#include "cake/workload/generators.hpp"

namespace cake::index {
namespace {

using event::EventImage;
using event::image_of;
using filter::ConjunctiveFilter;
using filter::FilterBuilder;
using filter::Op;
using value::Value;
using workload::Auction;
using workload::CarAuction;
using workload::Stock;
using workload::VehicleAuction;

class IndexTest : public ::testing::TestWithParam<Engine> {
protected:
  void SetUp() override {
    workload::ensure_types_registered();
    index_ = make_index(GetParam());
  }

  std::vector<FilterId> match(const EventImage& image) {
    std::vector<FilterId> out;
    index_->match(image, out);
    std::sort(out.begin(), out.end());
    return out;
  }

  std::unique_ptr<MatchIndex> index_;
};

TEST_P(IndexTest, EmptyIndexMatchesNothing) {
  EXPECT_TRUE(match(image_of(Stock{"Foo", 1.0, 1})).empty());
  EXPECT_EQ(index_->size(), 0u);
}

TEST_P(IndexTest, SingleEqualityFilter) {
  const FilterId id = index_->add(
      FilterBuilder{"Stock"}.where("symbol", Op::Eq, Value{"Foo"}).build());
  EXPECT_EQ(match(image_of(Stock{"Foo", 1.0, 1})), std::vector<FilterId>{id});
  EXPECT_TRUE(match(image_of(Stock{"Bar", 1.0, 1})).empty());
}

TEST_P(IndexTest, ConjunctionRequiresAllPredicates) {
  const FilterId id = index_->add(FilterBuilder{"Stock"}
                                      .where("symbol", Op::Eq, Value{"Foo"})
                                      .where("price", Op::Lt, Value{10.0})
                                      .build());
  EXPECT_EQ(match(image_of(Stock{"Foo", 9.0, 1})), std::vector<FilterId>{id});
  EXPECT_TRUE(match(image_of(Stock{"Foo", 11.0, 1})).empty());
  EXPECT_TRUE(match(image_of(Stock{"Bar", 9.0, 1})).empty());
}

TEST_P(IndexTest, AcceptAllFilterMatchesEverything) {
  const FilterId id = index_->add(ConjunctiveFilter::accept_all());
  EXPECT_EQ(match(image_of(Stock{"Foo", 1.0, 1})), std::vector<FilterId>{id});
  EXPECT_EQ(match(EventImage{"Ghost", {}}), std::vector<FilterId>{id});
}

TEST_P(IndexTest, SubtypeInclusiveTypeFilter) {
  const FilterId id = index_->add(FilterBuilder{"Auction", true}.build());
  EXPECT_EQ(match(image_of(CarAuction{1.0, 2, 4})), std::vector<FilterId>{id});
  EXPECT_EQ(match(image_of(Auction{"Estate", 1.0})), std::vector<FilterId>{id});
  EXPECT_TRUE(match(image_of(Stock{"Foo", 1.0, 1})).empty());
}

TEST_P(IndexTest, ExactTypeFilterRejectsSubtypes) {
  const FilterId id = index_->add(FilterBuilder{"Auction", false}.build());
  EXPECT_EQ(match(image_of(Auction{"Estate", 1.0})), std::vector<FilterId>{id});
  EXPECT_TRUE(match(image_of(VehicleAuction{1.0, "Van", 3})).empty());
}

TEST_P(IndexTest, RemoveStopsMatching) {
  const FilterId id = index_->add(
      FilterBuilder{"Stock"}.where("symbol", Op::Eq, Value{"Foo"}).build());
  index_->remove(id);
  EXPECT_TRUE(match(image_of(Stock{"Foo", 1.0, 1})).empty());
  EXPECT_EQ(index_->size(), 0u);
  EXPECT_EQ(index_->find(id), nullptr);
  index_->remove(id);  // idempotent
  index_->remove(12345);
}

TEST_P(IndexTest, FindReturnsStoredFilter) {
  const ConjunctiveFilter f =
      FilterBuilder{"Stock"}.where("price", Op::Gt, Value{5.0}).build();
  const FilterId id = index_->add(f);
  ASSERT_NE(index_->find(id), nullptr);
  EXPECT_EQ(*index_->find(id), f);
}

TEST_P(IndexTest, DuplicateRangeConstraintsOnOneAttribute) {
  const FilterId id = index_->add(FilterBuilder{"Stock"}
                                      .where("price", Op::Gt, Value{5.0})
                                      .where("price", Op::Lt, Value{10.0})
                                      .build());
  EXPECT_EQ(match(image_of(Stock{"X", 7.0, 1})), std::vector<FilterId>{id});
  EXPECT_TRUE(match(image_of(Stock{"X", 4.0, 1})).empty());
  EXPECT_TRUE(match(image_of(Stock{"X", 12.0, 1})).empty());
}

TEST_P(IndexTest, WildcardConstraintsAreTriviallySatisfied) {
  const FilterId id = index_->add(FilterBuilder{"Stock"}
                                      .where("symbol", Op::Eq, Value{"Foo"})
                                      .where("price", Op::Any)
                                      .build());
  EXPECT_EQ(match(image_of(Stock{"Foo", 1e9, 1})), std::vector<FilterId>{id});
}

TEST_P(IndexTest, ManyFiltersSelectSubset) {
  std::vector<FilterId> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(index_->add(FilterBuilder{"Stock"}
                                  .where("price", Op::Lt, Value{double(i)})
                                  .build()));
  }
  const auto matched = match(image_of(Stock{"Foo", 9.5, 1}));
  // prices 10..19 are above 9.5
  std::vector<FilterId> expected(ids.begin() + 10, ids.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(matched, expected);
}

INSTANTIATE_TEST_SUITE_P(Engines, IndexTest,
                         ::testing::Values(Engine::Naive, Engine::Counting,
                                           Engine::Trie,
                                           Engine::ShardedCounting),
                         [](const auto& info) {
                           switch (info.param) {
                             case Engine::Naive: return "Naive";
                             case Engine::Counting: return "Counting";
                             case Engine::Trie: return "Trie";
                             default: return "ShardedCounting";
                           }
                         });

TEST(TrieStructure, SharedPrefixesShareNodes) {
  workload::ensure_types_registered();
  TrieIndex trie{reflect::TypeRegistry::global()};
  // 20 filters sharing (year, conference), unique authors.
  for (int i = 0; i < 20; ++i) {
    trie.add(FilterBuilder{"Publication"}
                 .where("year", Op::Eq, Value{2002})
                 .where("conference", Op::Eq, Value{"ICDCS"})
                 .where("author", Op::Eq, Value{"a" + std::to_string(i)})
                 .build());
  }
  // root + year + conference + 20 author leaves = 23 nodes, not 20×3.
  EXPECT_EQ(trie.node_count(), 23u);
}

TEST(TrieStructure, NonEqualityFiltersTerminateAtTheSharedPrefix) {
  workload::ensure_types_registered();
  TrieIndex trie{reflect::TypeRegistry::global()};
  const FilterId id = trie.add(FilterBuilder{"Stock"}
                                   .where("symbol", Op::Eq, Value{"Foo"})
                                   .where("price", Op::Lt, Value{10.0})
                                   .build());
  EXPECT_EQ(trie.node_count(), 2u);  // root + (symbol, Foo)
  std::vector<FilterId> out;
  trie.match(event::image_of(Stock{"Foo", 5.0, 1}), out);
  EXPECT_EQ(out, std::vector<FilterId>{id});
  trie.match(event::image_of(Stock{"Foo", 15.0, 1}), out);
  EXPECT_TRUE(out.empty());
}

// Oracle property: both engines agree on thousands of random
// (filters, events) combinations across all workload domains.
TEST(IndexOracle, CountingAgreesWithNaiveOnRandomWorkloads) {
  workload::ensure_types_registered();
  util::Rng rng{31337};
  workload::BiblioGenerator biblio{{}, 11};
  workload::StockGenerator stocks{{}, 12};
  workload::AuctionGenerator auctions{{}, 13};

  NaiveTable naive{reflect::TypeRegistry::global()};
  CountingIndex counting{reflect::TypeRegistry::global()};
  TrieIndex trie{reflect::TypeRegistry::global()};
  ShardedIndex sharded{Engine::Counting, reflect::TypeRegistry::global(), 8};

  // A mixed filter population, including type-only and wildcard shapes.
  for (int i = 0; i < 150; ++i) {
    ConjunctiveFilter f;
    switch (rng.below(5)) {
      case 0: f = biblio.next_subscription(); break;
      case 1: f = biblio.next_subscription(rng.below(4)); break;
      case 2: f = stocks.next_subscription(); break;
      case 3:
        f = FilterBuilder{"Auction", true}
                .where("price", Op::Lt, Value{1000.0 + 49'000.0 * rng.uniform()})
                .build();
        break;
      case 4: f = FilterBuilder{"VehicleAuction", rng.chance(0.5)}.build(); break;
    }
    const FilterId a = naive.add(f);
    const FilterId b = counting.add(f);
    const FilterId c = trie.add(f);
    const FilterId d = sharded.add(f);
    ASSERT_EQ(a, b);
    ASSERT_EQ(a, c);
    ASSERT_EQ(a, d);
    // Churn: occasionally remove a random earlier filter from all.
    if (rng.chance(0.15)) {
      const FilterId victim = rng.below(a + 1);
      naive.remove(victim);
      counting.remove(victim);
      trie.remove(victim);
      sharded.remove(victim);
    }
  }
  ASSERT_EQ(naive.size(), counting.size());
  ASSERT_EQ(naive.size(), trie.size());
  ASSERT_EQ(naive.size(), sharded.size());

  std::vector<FilterId> out_naive, out_counting, out_trie, out_sharded;
  for (int i = 0; i < 2000; ++i) {
    EventImage image;
    switch (rng.below(3)) {
      case 0: image = biblio.next_event(); break;
      case 1: image = image_of(stocks.next()); break;
      case 2: image = image_of(*auctions.next()); break;
    }
    naive.match(image, out_naive);
    counting.match(image, out_counting);
    trie.match(image, out_trie);
    sharded.match(image, out_sharded);
    std::sort(out_naive.begin(), out_naive.end());
    std::sort(out_counting.begin(), out_counting.end());
    std::sort(out_trie.begin(), out_trie.end());
    std::sort(out_sharded.begin(), out_sharded.end());
    ASSERT_EQ(out_naive, out_counting) << "event " << image.to_string();
    ASSERT_EQ(out_naive, out_trie) << "event " << image.to_string();
    ASSERT_EQ(out_naive, out_sharded) << "event " << image.to_string();
  }
}

}  // namespace
}  // namespace cake::index
