// Unit tests for the reflection substrate.
#include "cake/reflect/reflect.hpp"

#include <gtest/gtest.h>

namespace cake::reflect {
namespace {

// Local reflectable hierarchy, registered into a per-fixture registry.
struct Animal : Reflectable {
  static const TypeInfo* info;
  [[nodiscard]] const TypeInfo& type() const noexcept override { return *info; }

  std::string species_ = "generic";
  std::int64_t legs_ = 4;

  [[nodiscard]] const std::string& species() const noexcept { return species_; }
  [[nodiscard]] std::int64_t legs() const noexcept { return legs_; }
};
const TypeInfo* Animal::info = nullptr;

struct Dog : Animal {
  static const TypeInfo* dog_info;
  [[nodiscard]] const TypeInfo& type() const noexcept override {
    return *dog_info;
  }

  Dog() { species_ = "dog"; }
  bool good_boy_ = true;
  [[nodiscard]] bool good_boy() const noexcept { return good_boy_; }
  [[nodiscard]] double weight() const noexcept { return 12.5; }
};
const TypeInfo* Dog::dog_info = nullptr;

class ReflectTest : public ::testing::Test {
protected:
  void SetUp() override {
    Animal::info = &TypeBuilder<Animal>{registry_, "Animal"}
                        .attr("species", &Animal::species)
                        .attr("legs", &Animal::legs)
                        .finalize();
    Dog::dog_info = &TypeBuilder<Dog>{registry_, "Dog"}
                         .base<Animal>()
                         .attr("good_boy", &Dog::good_boy)
                         .attr("weight", &Dog::weight)
                         .finalize();
  }

  TypeRegistry registry_;
};

TEST_F(ReflectTest, LookupByNameAndType) {
  EXPECT_EQ(registry_.find("Animal"), Animal::info);
  EXPECT_EQ(registry_.find("Dog"), Dog::dog_info);
  EXPECT_EQ(registry_.find("Cat"), nullptr);
  EXPECT_EQ(&registry_.get<Animal>(), Animal::info);
  EXPECT_EQ(&registry_.get<Dog>(), Dog::dog_info);
  EXPECT_TRUE(registry_.contains<Dog>());
  EXPECT_EQ(registry_.size(), 2u);
}

TEST_F(ReflectTest, GetUnknownThrows) {
  EXPECT_THROW((void)registry_.get("Cat"), ReflectError);
  EXPECT_THROW((void)registry_.get<int>(), ReflectError);
}

TEST_F(ReflectTest, DuplicateNameThrows) {
  struct Other : Reflectable {
    [[nodiscard]] const TypeInfo& type() const noexcept override {
      return *Animal::info;
    }
  };
  EXPECT_THROW(TypeBuilder<Other>(registry_, "Animal").finalize(), ReflectError);
}

TEST_F(ReflectTest, DuplicateCppTypeThrows) {
  EXPECT_THROW(TypeBuilder<Animal>(registry_, "Animal2").finalize(), ReflectError);
}

TEST_F(ReflectTest, ConformanceIsReflexiveAndTransitiveUpward) {
  EXPECT_TRUE(Animal::info->conforms_to(*Animal::info));
  EXPECT_TRUE(Dog::dog_info->conforms_to(*Dog::dog_info));
  EXPECT_TRUE(Dog::dog_info->conforms_to(*Animal::info));
  EXPECT_FALSE(Animal::info->conforms_to(*Dog::dog_info));
}

TEST_F(ReflectTest, InheritedAttributesComeFirst) {
  const auto& attrs = Dog::dog_info->attributes();
  ASSERT_EQ(attrs.size(), 4u);
  EXPECT_EQ(attrs[0]->name, "species");
  EXPECT_EQ(attrs[1]->name, "legs");
  EXPECT_EQ(attrs[2]->name, "good_boy");
  EXPECT_EQ(attrs[3]->name, "weight");
}

TEST_F(ReflectTest, OwnAttributesExcludeInherited) {
  EXPECT_EQ(Dog::dog_info->own_attributes().size(), 2u);
  EXPECT_EQ(Animal::info->own_attributes().size(), 2u);
}

TEST_F(ReflectTest, KindDeduction) {
  EXPECT_EQ(Dog::dog_info->find_attribute("species")->kind, value::Kind::String);
  EXPECT_EQ(Dog::dog_info->find_attribute("legs")->kind, value::Kind::Int);
  EXPECT_EQ(Dog::dog_info->find_attribute("good_boy")->kind, value::Kind::Bool);
  EXPECT_EQ(Dog::dog_info->find_attribute("weight")->kind, value::Kind::Double);
}

TEST_F(ReflectTest, FindAttributeSearchesInheritanceChain) {
  EXPECT_NE(Dog::dog_info->find_attribute("legs"), nullptr);
  EXPECT_EQ(Dog::dog_info->find_attribute("missing"), nullptr);
  EXPECT_EQ(Animal::info->find_attribute("weight"), nullptr);
}

TEST_F(ReflectTest, GettersReadThroughAccessors) {
  Dog dog;
  dog.legs_ = 3;
  const AttributeInfo* legs = Dog::dog_info->find_attribute("legs");
  EXPECT_EQ(legs->get(dog), value::Value{3});
  const AttributeInfo* species = Dog::dog_info->find_attribute("species");
  EXPECT_EQ(species->get(dog), value::Value{"dog"});
  const AttributeInfo* good = Dog::dog_info->find_attribute("good_boy");
  EXPECT_EQ(good->get(dog), value::Value{true});
}

TEST_F(ReflectTest, InheritedGetterWorksOnDerivedInstance) {
  Dog dog;
  // The getter was registered on Animal but must read the Dog object.
  const AttributeInfo* species = Animal::info->find_attribute("species");
  EXPECT_EQ(species->get(dog), value::Value{"dog"});
}

TEST_F(ReflectTest, RedeclaringInheritedAttributeThrows) {
  struct BadDog : Animal {
    [[nodiscard]] const TypeInfo& type() const noexcept override {
      return *Animal::info;
    }
  };
  TypeBuilder<BadDog> builder{registry_, "BadDog"};
  builder.base<Animal>().attr("legs", &Animal::legs);
  EXPECT_THROW(builder.finalize(), ReflectError);
}

struct Point : Reflectable {
  static const TypeInfo* info;
  [[nodiscard]] const TypeInfo& type() const noexcept override { return *info; }
  double x = 3.0, y = 4.0;
};
const TypeInfo* Point::info = nullptr;

TEST(ReflectFn, ComputedAttributeProjection) {
  TypeRegistry registry;
  Point::info =
      &TypeBuilder<Point>{registry, "Point"}
           .attr_fn("norm", [](const Point& p) { return p.x * p.x + p.y * p.y; })
           .finalize();
  Point p;
  EXPECT_EQ(Point::info->find_attribute("norm")->get(p), value::Value{25.0});
}

}  // namespace
}  // namespace cake::reflect
