// Unit + property tests for the Zipf sampler.
#include "cake/util/zipf.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace cake::util {
namespace {

TEST(Zipf, RejectsEmptyUniverse) {
  EXPECT_THROW(Zipf(0, 1.0), std::invalid_argument);
}

TEST(Zipf, RejectsNegativeSkew) {
  EXPECT_THROW(Zipf(10, -0.5), std::invalid_argument);
}

TEST(Zipf, PmfSumsToOne) {
  for (double skew : {0.0, 0.5, 1.0, 2.0}) {
    Zipf z{100, skew};
    double sum = 0;
    for (std::size_t r = 0; r < z.size(); ++r) sum += z.pmf(r);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "skew=" << skew;
  }
}

TEST(Zipf, PmfMonotoneNonIncreasing) {
  Zipf z{50, 1.2};
  for (std::size_t r = 1; r < z.size(); ++r)
    EXPECT_LE(z.pmf(r), z.pmf(r - 1) + 1e-12);
}

TEST(Zipf, PmfOutOfRangeThrows) {
  Zipf z{5, 1.0};
  EXPECT_THROW(z.pmf(5), std::out_of_range);
}

TEST(Zipf, ZeroSkewIsUniform) {
  Zipf z{8, 0.0};
  for (std::size_t r = 0; r < z.size(); ++r) EXPECT_NEAR(z.pmf(r), 1.0 / 8, 1e-9);
}

TEST(Zipf, SingleElementAlwaysSampled) {
  Zipf z{1, 1.5};
  Rng rng{5};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(Zipf, SamplesStayInRange) {
  Zipf z{37, 1.1};
  Rng rng{6};
  for (int i = 0; i < 5000; ++i) EXPECT_LT(z.sample(rng), 37u);
}

TEST(Zipf, EmpiricalFrequenciesTrackPmf) {
  Zipf z{10, 1.0};
  Rng rng{7};
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.sample(rng)];
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / kDraws, z.pmf(r), 0.01)
        << "rank " << r;
  }
}

TEST(Zipf, HigherSkewConcentratesHead) {
  Zipf mild{100, 0.5}, steep{100, 2.0};
  EXPECT_GT(steep.pmf(0), mild.pmf(0));
  EXPECT_LT(steep.pmf(99), mild.pmf(99));
}

// Property sweep: head mass grows with skew for several universe sizes.
class ZipfSkewSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ZipfSkewSweep, HeadMassMonotoneInSkew) {
  const std::size_t n = GetParam();
  double previous_head = -1.0;
  for (double skew : {0.0, 0.4, 0.8, 1.2, 1.6, 2.0}) {
    Zipf z{n, skew};
    const double head = z.pmf(0);
    EXPECT_GT(head, previous_head) << "n=" << n << " skew=" << skew;
    previous_head = head;
  }
}

INSTANTIATE_TEST_SUITE_P(UniverseSizes, ZipfSkewSweep,
                         ::testing::Values(2, 5, 10, 100, 1000));

}  // namespace
}  // namespace cake::util
