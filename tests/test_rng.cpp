// Unit tests for the deterministic RNG substrate.
#include "cake/util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cake::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{7};
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng{9};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversSmallRange) {
  Rng rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BetweenInclusiveBounds) {
  Rng rng{13};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BetweenSinglePoint) {
  Rng rng{17};
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.between(42, 42), 42);
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng{19};
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng{23};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng{29};
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 10'000.0, 0.3, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent{31};
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent() == child());
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a{37}, b{37};
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Rng, SplitMix64KnownExpansion) {
  // splitmix64 from seed 0 must produce the published reference sequence.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(state), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(splitmix64(state), 0x06c45d188009454fULL);
}

TEST(Rng, LemireUnbiasedOverThreeBuckets) {
  // With bound 3 the rejection path must keep buckets balanced.
  Rng rng{41};
  std::vector<int> buckets(3, 0);
  for (int i = 0; i < 30'000; ++i) ++buckets[rng.below(3)];
  for (const int count : buckets) EXPECT_NEAR(count, 10'000, 500);
}

}  // namespace
}  // namespace cake::util
