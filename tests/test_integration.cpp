// End-to-end integration tests of the multi-stage filtering system.
//
// The centerpiece is the paper's end-to-end guarantee: pre-filtering at
// intermediate stages is approximate but *never loses* an event — the set
// of events each subscriber receives equals the set selected by applying
// its original exact filter (closures included) to the full published
// stream.
#include <gtest/gtest.h>

#include <map>

#include "cake/metrics/metrics.hpp"
#include "cake/routing/overlay.hpp"
#include "cake/workload/generators.hpp"

namespace cake {
namespace {

using event::EventImage;
using filter::ConjunctiveFilter;
using filter::FilterBuilder;
using filter::Op;
using routing::Broker;
using routing::Overlay;
using routing::OverlayConfig;
using value::Value;

struct Fixture {
  explicit Fixture(OverlayConfig config = make_default_config(),
                   std::uint64_t seed = 1) : overlay(config), gen({}, seed) {
    workload::ensure_types_registered();
    publisher = &overlay.add_publisher();
    publisher->advertise(workload::BiblioGenerator::schema());
    overlay.run();
  }

  static OverlayConfig make_default_config() {
    OverlayConfig config;
    config.stage_counts = {1, 3, 9};
    return config;
  }

  Overlay overlay;
  workload::BiblioGenerator gen;
  routing::PublisherNode* publisher = nullptr;
};

// ---- the safety property ----------------------------------------------------

class SafetyProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SafetyProperty, DeliveredSetEqualsOracleSet) {
  const std::size_t wildcards = GetParam();
  Fixture fx;
  constexpr int kSubscribers = 40;
  constexpr int kEvents = 400;

  // Install subscribers with random (possibly wildcarded) filters.
  std::vector<ConjunctiveFilter> filters;
  std::vector<std::vector<std::string>> received(kSubscribers);
  for (int i = 0; i < kSubscribers; ++i) {
    const ConjunctiveFilter f = fx.gen.next_subscription(
        wildcards == 9 ? i % 4 : wildcards);  // 9 = mixed sweep
    filters.push_back(f);
    auto& sub = fx.overlay.add_subscriber();
    sub.subscribe(f, [&received, i](const EventImage& e) {
      received[i].push_back(e.to_string());
    });
  }
  fx.overlay.run();

  // Publish and compute the oracle in lockstep.
  std::vector<std::vector<std::string>> expected(kSubscribers);
  const auto& registry = fx.overlay.registry();
  for (int e = 0; e < kEvents; ++e) {
    const EventImage image = fx.gen.next_event();
    for (int i = 0; i < kSubscribers; ++i) {
      // The oracle applies the *standard form* like the runtime does; both
      // match identically, but keep it bit-faithful.
      if (filters[i].matches(image, registry))
        expected[i].push_back(image.to_string());
    }
    fx.publisher->publish(image);
  }
  fx.overlay.run();

  for (int i = 0; i < kSubscribers; ++i) {
    EXPECT_EQ(received[i], expected[i]) << "subscriber " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(WildcardMixes, SafetyProperty,
                         ::testing::Values(0, 1, 2, 9),
                         [](const auto& info) {
                           return info.param == 9
                                      ? std::string{"Mixed"}
                                      : "Wildcards" + std::to_string(info.param);
                         });

TEST(Integration, SafetyHoldsUnderTtlChurnWithRenewals) {
  OverlayConfig config = Fixture::make_default_config();
  config.broker.ttl = 2'000'000;
  config.broker.renew_interval = 900'000;
  config.broker.reap_interval = 1'000'000;
  config.subscriber.renew_interval = 900'000;
  Fixture fx{config};

  std::vector<ConjunctiveFilter> filters;
  std::vector<int> received(10, 0), expected(10, 0);
  for (int i = 0; i < 10; ++i) {
    filters.push_back(fx.gen.next_subscription());
    auto& sub = fx.overlay.add_subscriber();
    sub.subscribe(filters[i], [&received, i](const EventImage&) { ++received[i]; });
  }
  fx.overlay.run();

  // Publish in bursts separated by multiples of the TTL.
  for (int burst = 0; burst < 8; ++burst) {
    for (int e = 0; e < 50; ++e) {
      const EventImage image = fx.gen.next_event();
      for (int i = 0; i < 10; ++i)
        if (filters[i].matches(image, fx.overlay.registry())) ++expected[i];
      fx.publisher->publish(image);
    }
    fx.overlay.run();
    fx.overlay.scheduler().run_until(fx.overlay.scheduler().now() + 3'000'000);
  }
  EXPECT_EQ(received, expected);
}

// ---- pre-filtering efficiency ----------------------------------------------

TEST(Integration, PreFilteringDropsIrrelevantTrafficEarly) {
  Fixture fx;
  // One narrow subscription: everything else should die near the root.
  auto& sub = fx.overlay.add_subscriber();
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{1995})
                    .where("conference", Op::Eq, Value{"conf-0"})
                    .where("author", Op::Eq, Value{"author-0"})
                    .where("title", Op::Eq, Value{"title-0-0-0-0"})
                    .build(),
                {});
  fx.overlay.run();

  for (int e = 0; e < 500; ++e) fx.publisher->publish(fx.gen.next_event());
  fx.overlay.run();

  const auto root_stats = fx.overlay.root().stats();
  EXPECT_EQ(root_stats.events_received, 500u);
  // Stage-1 brokers collectively received only what the root matched.
  std::uint64_t stage1_received = 0;
  for (Broker* b : fx.overlay.brokers_at(1)) stage1_received += b->stats().events_received;
  std::uint64_t stage2_forwarded = 0;
  for (Broker* b : fx.overlay.brokers_at(2)) stage2_forwarded += b->stats().events_forwarded;
  EXPECT_EQ(stage1_received, stage2_forwarded);
  EXPECT_LT(stage1_received, 500u);
  // And the subscriber got even less than stage 1 received.
  EXPECT_LE(sub.stats().events_received, stage1_received);
}

TEST(Integration, SimilarSubscriptionsClusterUnderOneSubtree) {
  Fixture fx;
  // 12 subscribers sharing (year, conference, author), different titles.
  std::vector<std::uint64_t> tokens;
  std::vector<routing::SubscriberNode*> subs;
  for (int i = 0; i < 12; ++i) {
    auto& sub = fx.overlay.add_subscriber();
    tokens.push_back(sub.subscribe(
        FilterBuilder{"Publication"}
            .where("year", Op::Eq, Value{2002})
            .where("conference", Op::Eq, Value{"ICDCS"})
            .where("author", Op::Eq, Value{"Eugster"})
            .where("title", Op::Eq, Value{"t" + std::to_string(i)})
            .build(),
        {}));
    subs.push_back(&sub);
    // Let each join settle so the covering search can see the previous
    // subscriptions (concurrent joins may race past each other, which is
    // legal but defeats the clustering this test asserts).
    fx.overlay.run();
  }

  std::map<sim::NodeId, int> homes;
  for (std::size_t i = 0; i < subs.size(); ++i) {
    const auto home = subs[i]->accepted_at(tokens[i]);
    ASSERT_TRUE(home.has_value());
    ++homes[*home];
  }
  // The covering search funnels all of them to the leaf that got the first
  // one: a single home node.
  EXPECT_EQ(homes.size(), 1u);

  // Exactly one stage-1 entry and one path: the weakened forms collapsed.
  std::size_t stage1_filters = 0;
  for (Broker* b : fx.overlay.brokers_at(1)) stage1_filters += b->stats().filters;
  EXPECT_EQ(stage1_filters, 1u);
}

TEST(Integration, RandomPlacementScattersSimilarSubscriptions) {
  OverlayConfig config = Fixture::make_default_config();
  config.broker.placement = routing::Placement::Random;
  Fixture fx{config};
  std::vector<std::uint64_t> tokens;
  std::vector<routing::SubscriberNode*> subs;
  for (int i = 0; i < 12; ++i) {
    auto& sub = fx.overlay.add_subscriber();
    tokens.push_back(sub.subscribe(
        FilterBuilder{"Publication"}
            .where("year", Op::Eq, Value{2002})
            .where("conference", Op::Eq, Value{"ICDCS"})
            .where("author", Op::Eq, Value{"Eugster"})
            .where("title", Op::Eq, Value{"t" + std::to_string(i)})
            .build(),
        {}));
    subs.push_back(&sub);
  }
  fx.overlay.run();
  std::map<sim::NodeId, int> homes;
  for (std::size_t i = 0; i < subs.size(); ++i)
    ++homes[*subs[i]->accepted_at(tokens[i])];
  // With 9 leaves and 12 random walks, clustering at one node is
  // practically impossible.
  EXPECT_GT(homes.size(), 1u);
}

TEST(Integration, WildcardSubscriberSitsAboveStageOne) {
  Fixture fx;
  auto& sub = fx.overlay.add_subscriber();
  const auto token = sub.subscribe(FilterBuilder{"Publication"}
                                       .where("year", Op::Eq, Value{1995})
                                       .build(),  // conference/author/title ALL
                                   {});
  fx.overlay.run();
  const auto home = sub.accepted_at(token);
  ASSERT_TRUE(home.has_value());
  // conference is used up to stage 2 ⇒ most general wildcard = conference,
  // attach at stage 3 (the root).
  EXPECT_EQ(*home, fx.overlay.root().id());
}

TEST(Integration, WildcardTitleOnlyAttachesAtStageOne) {
  Fixture fx;
  auto& sub = fx.overlay.add_subscriber();
  const auto token = sub.subscribe(FilterBuilder{"Publication"}
                                       .where("year", Op::Eq, Value{1995})
                                       .where("conference", Op::Eq, Value{"conf-1"})
                                       .where("author", Op::Eq, Value{"author-2"})
                                       .build(),
                                   {});
  fx.overlay.run();
  const auto home = sub.accepted_at(token);
  ASSERT_TRUE(home.has_value());
  bool at_stage1 = false;
  for (Broker* b : fx.overlay.brokers_at(1)) at_stage1 |= (b->id() == *home);
  EXPECT_TRUE(at_stage1);
}

TEST(Integration, DeepHierarchySafety) {
  OverlayConfig config;
  config.stage_counts = {1, 2, 4, 8, 16};  // five broker stages
  Fixture fx{config};
  std::vector<ConjunctiveFilter> filters;
  std::vector<int> received(8, 0), expected(8, 0);
  for (int i = 0; i < 8; ++i) {
    filters.push_back(fx.gen.next_subscription(i % 3));
    auto& sub = fx.overlay.add_subscriber();
    sub.subscribe(filters[i], [&received, i](const EventImage&) { ++received[i]; });
  }
  fx.overlay.run();
  for (int e = 0; e < 300; ++e) {
    const EventImage image = fx.gen.next_event();
    for (int i = 0; i < 8; ++i)
      if (filters[i].matches(image, fx.overlay.registry())) ++expected[i];
    fx.publisher->publish(image);
  }
  fx.overlay.run();
  EXPECT_EQ(received, expected);
}

TEST(Integration, DeliveryLatencyIsHopsTimesLinkLatency) {
  // Publisher → root → stage-2 → stage-1 → subscriber = 4 hops of 1 ms.
  // The filter specifies all four attributes, so it lands at stage 1.
  Fixture fx;
  auto& sub = fx.overlay.add_subscriber();
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{1995})
                    .where("conference", Op::Eq, Value{"c"})
                    .where("author", Op::Eq, Value{"a"})
                    .where("title", Op::Eq, Value{"t"})
                    .build(),
                {});
  fx.overlay.run();

  for (int i = 0; i < 5; ++i)
    fx.publisher->publish(EventImage{"Publication",
                                     {{"year", Value{1995}},
                                      {"conference", Value{"c"}},
                                      {"author", Value{"a"}},
                                      {"title", Value{"t"}}}});
  fx.overlay.run();

  const util::RunningStats latency = metrics::delivery_latency(fx.overlay);
  EXPECT_EQ(latency.count(), 5u);
  EXPECT_DOUBLE_EQ(latency.mean(), 4000.0);
  EXPECT_DOUBLE_EQ(latency.min(), 4000.0);
  EXPECT_DOUBLE_EQ(latency.max(), 4000.0);
}

TEST(Integration, WildcardSubscriberAtRootHasShorterPath) {
  Fixture fx;
  auto& sub = fx.overlay.add_subscriber();
  // Conference wildcard → attaches at the root → 2 hops only.
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{1995})
                    .build(),
                {});
  fx.overlay.run();
  fx.publisher->publish(EventImage{"Publication",
                                   {{"year", Value{1995}},
                                    {"conference", Value{"c"}},
                                    {"author", Value{"a"}},
                                    {"title", Value{"t"}}}});
  fx.overlay.run();
  EXPECT_DOUBLE_EQ(sub.delivery_latency().mean(), 2000.0);
}

TEST(Integration, RegexSubscriptionsRouteEndToEnd) {
  // §2.1's "regular expressions" rung, exercised through the full overlay:
  // the regex constraint rides the weakened filters like any other.
  Fixture fx;
  auto& sub = fx.overlay.add_subscriber();
  std::vector<std::string> titles;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{1995})
                    .where("conference", Op::Eq, Value{"conf-0"})
                    .where("author", Op::Eq, Value{"author-0"})
                    .where("title", Op::Regex, Value{"title-0-0-0-[01]"})
                    .build(),
                [&](const EventImage& e) {
                  titles.push_back(e.find("title")->as_string());
                });
  fx.overlay.run();

  auto publish_title = [&](const char* title) {
    fx.publisher->publish(EventImage{"Publication",
                                     {{"year", Value{1995}},
                                      {"conference", Value{"conf-0"}},
                                      {"author", Value{"author-0"}},
                                      {"title", Value{title}}}});
  };
  publish_title("title-0-0-0-0");
  publish_title("title-0-0-0-1");
  publish_title("title-0-0-0-2");  // rejected by the class [01]
  fx.overlay.run();
  EXPECT_EQ(titles,
            (std::vector<std::string>{"title-0-0-0-0", "title-0-0-0-1"}));
}

TEST(Integration, TwoEventClassesFlowConcurrently) {
  // Stock quotes and publications interleave through the same overlay;
  // every subscriber sees only its class.
  Fixture fx;
  fx.publisher->advertise(workload::StockGenerator::schema());
  fx.overlay.run();

  auto& reader = fx.overlay.add_subscriber();
  auto& trader = fx.overlay.add_subscriber();
  int papers = 0, quotes = 0;
  reader.subscribe(FilterBuilder{"Publication"}
                       .where("year", Op::Eq, Value{1995})
                       .build(),
                   [&](const EventImage&) { ++papers; });
  trader.subscribe(FilterBuilder{"Stock"}
                       .where("symbol", Op::Eq, Value{"AAA"})
                       .build(),
                   [&](const EventImage&) { ++quotes; });
  fx.overlay.run();

  for (int i = 0; i < 3; ++i) {
    fx.publisher->publish(EventImage{"Publication",
                                     {{"year", Value{1995}},
                                      {"conference", Value{"c"}},
                                      {"author", Value{"a"}},
                                      {"title", Value{"t"}}}});
    fx.publisher->publish(
        event::image_of(workload::Stock{"AAA", 10.0 + i, 100}));
    fx.publisher->publish(
        event::image_of(workload::Stock{"BBB", 10.0 + i, 100}));
  }
  fx.overlay.run();
  EXPECT_EQ(papers, 3);
  EXPECT_EQ(quotes, 3);
}

TEST(Integration, PerPublisherFifoOrderingIsPreserved) {
  // The virtual network is FIFO per link and brokers forward synchronously,
  // so each subscriber sees any one publisher's events in publish order —
  // an invariant applications can lean on.
  Fixture fx;
  auto& sub = fx.overlay.add_subscriber();
  std::vector<std::string> seen;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{1995})
                    .where("conference", Op::Eq, Value{"c"})
                    .where("author", Op::Eq, Value{"a"})
                    .where("title", Op::Prefix, Value{"t"})
                    .build(),
                [&](const EventImage& e) {
                  seen.push_back(e.find("title")->as_string());
                });
  fx.overlay.run();

  auto& second = fx.overlay.add_publisher();
  std::vector<std::string> first_order, second_order;
  for (int i = 0; i < 50; ++i) {
    const std::string t1 = "t-p1-" + std::to_string(i);
    const std::string t2 = "t-p2-" + std::to_string(i);
    first_order.push_back(t1);
    second_order.push_back(t2);
    fx.publisher->publish(EventImage{"Publication",
                                     {{"year", Value{1995}},
                                      {"conference", Value{"c"}},
                                      {"author", Value{"a"}},
                                      {"title", Value{t1}}}});
    second.publish(EventImage{"Publication",
                              {{"year", Value{1995}},
                               {"conference", Value{"c"}},
                               {"author", Value{"a"}},
                               {"title", Value{t2}}}});
  }
  fx.overlay.run();
  ASSERT_EQ(seen.size(), 100u);

  std::vector<std::string> from_first, from_second;
  for (const auto& title : seen) {
    (title.rfind("t-p1-", 0) == 0 ? from_first : from_second).push_back(title);
  }
  EXPECT_EQ(from_first, first_order);
  EXPECT_EQ(from_second, second_order);
}

TEST(Integration, TypeHierarchyRoutedEndToEnd) {
  OverlayConfig config;
  config.stage_counts = {1, 2};
  Overlay overlay{config};
  workload::ensure_types_registered();
  auto& pub = overlay.add_publisher();
  const auto& registry = reflect::TypeRegistry::global();
  pub.advertise(weaken::StageSchema::drop_one_per_stage(
      registry.get("Auction"), 3));
  pub.advertise(weaken::StageSchema::drop_one_per_stage(
      registry.get("VehicleAuction"), 3));
  pub.advertise(weaken::StageSchema::drop_one_per_stage(
      registry.get("CarAuction"), 3));
  overlay.run();

  auto& all_auctions = overlay.add_subscriber();
  auto& vehicles_only = overlay.add_subscriber();
  int all_count = 0, vehicle_count = 0;
  all_auctions.subscribe(FilterBuilder{"Auction", true}.build(),
                         [&](const EventImage&) { ++all_count; });
  vehicles_only.subscribe(FilterBuilder{"VehicleAuction", true}
                              .where("price", Op::Lt, Value{10'000.0})
                              .build(),
                          [&](const EventImage&) { ++vehicle_count; });
  overlay.run();

  pub.publish(workload::Auction{"Estate", 5'000.0});          // all only
  pub.publish(workload::VehicleAuction{8'000.0, "Van", 6});   // both
  pub.publish(workload::CarAuction{9'000.0, 4, 5});           // both
  pub.publish(workload::CarAuction{20'000.0, 4, 5});          // all only
  pub.publish(workload::Stock{"Foo", 1.0, 1});                // neither
  overlay.run();

  EXPECT_EQ(all_count, 4);
  EXPECT_EQ(vehicle_count, 2);
}

}  // namespace
}  // namespace cake
