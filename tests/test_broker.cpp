// Protocol-level unit tests of a single broker: Fig. 5(b) subscription
// handling, Fig. 6 filtering/forwarding, wildcard placement, soft-state
// leases and unsubscription.
#include "cake/routing/broker.hpp"
#include "cake/runtime/sim_transport.hpp"

#include <gtest/gtest.h>

#include "cake/workload/generators.hpp"

namespace cake::routing {
namespace {

using filter::ConjunctiveFilter;
using filter::FilterBuilder;
using filter::Op;
using value::Value;

/// Captures every packet delivered to a node id.
class Probe {
public:
  Probe(sim::Network& net, sim::NodeId id) : id_(id) {
    net.attach(id, [this](sim::NodeId from, const sim::Network::Payload& p) {
      from_.push_back(from);
      packets_.push_back(decode(p));
    });
  }

  [[nodiscard]] sim::NodeId id() const noexcept { return id_; }
  [[nodiscard]] const std::vector<Packet>& packets() const noexcept {
    return packets_;
  }

  template <class T>
  [[nodiscard]] std::vector<T> of() const {
    std::vector<T> out;
    for (const Packet& p : packets_)
      if (const T* msg = std::get_if<T>(&p)) out.push_back(*msg);
    return out;
  }

  void clear() { packets_.clear(); from_.clear(); }

private:
  sim::NodeId id_;
  std::vector<Packet> packets_;
  std::vector<sim::NodeId> from_;
};

ConjunctiveFilter pub_filter(int year, const std::string& conf,
                             const std::string& author,
                             const std::string& title) {
  return FilterBuilder{"Publication"}
      .where("year", Op::Eq, Value{year})
      .where("conference", Op::Eq, Value{conf})
      .where("author", Op::Eq, Value{author})
      .where("title", Op::Eq, Value{title})
      .build();
}

class BrokerTest : public ::testing::Test {
protected:
  static constexpr sim::NodeId kParent = 100;
  static constexpr sim::NodeId kSub1 = 200;
  static constexpr sim::NodeId kSub2 = 201;

  BrokerTest() { workload::ensure_types_registered(); }

  /// One broker with a probed parent and `children` probed broker children.
  Broker& make_broker(std::size_t stage, BrokerConfig config = {},
                      std::size_t children = 0, bool with_parent = true) {
    broker_ = std::make_unique<Broker>(1, stage, net_, transport_,
                                       reflect::TypeRegistry::global(), config,
                                       util::Rng{7});
    if (with_parent) broker_->set_parent(kParent);
    parent_ = std::make_unique<Probe>(net_, kParent);
    for (std::size_t i = 0; i < children; ++i) {
      child_probes_.push_back(std::make_unique<Probe>(net_, 10 + i));
      broker_->add_child(10 + static_cast<sim::NodeId>(i));
    }
    sub1_ = std::make_unique<Probe>(net_, kSub1);
    sub2_ = std::make_unique<Probe>(net_, kSub2);
    broker_->start();
    advertise();
    return *broker_;
  }

  void advertise() {
    net_.send(999, broker_->id(),
              encode(Advertise{workload::BiblioGenerator::schema()}));
    sched_.run();
  }

  void send(sim::NodeId from, const Packet& packet) {
    net_.send(from, broker_->id(), encode(packet));
    sched_.run();
  }

  sim::Scheduler sched_;
  runtime::SimTransport transport_{sched_};
  sim::Network net_{sched_};
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<Probe> parent_;
  std::unique_ptr<Probe> sub1_;
  std::unique_ptr<Probe> sub2_;
  std::vector<std::unique_ptr<Probe>> child_probes_;
};

TEST_F(BrokerTest, RejectsStageZero) {
  EXPECT_THROW(Broker(1, 0, net_, transport_, reflect::TypeRegistry::global(), {},
                      util::Rng{1}),
               std::invalid_argument);
}

TEST_F(BrokerTest, AdvertisementStoredAndFlooded) {
  Broker& broker = make_broker(2, {}, 3);
  EXPECT_NE(broker.schema_for("Publication"), nullptr);
  EXPECT_EQ(broker.schema_for("Stock"), nullptr);
  for (const auto& child : child_probes_)
    EXPECT_EQ(child->of<Advertise>().size(), 1u);
}

TEST_F(BrokerTest, Stage1InsertStoresWeakenedFilterAndAccepts) {
  Broker& broker = make_broker(1);
  const ConjunctiveFilter f = pub_filter(2002, "ICDCS", "Eugster", "Cake");
  send(kSub1, Subscribe{f, kSub1, 5});

  // Subscriber accepted with the stage-1 weakened form (title dropped).
  const auto accepted = sub1_->of<AcceptedAt>();
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0].node, broker.id());
  EXPECT_EQ(accepted[0].token, 5u);
  ASSERT_EQ(accepted[0].stored.constraints().size(), 3u);
  EXPECT_FALSE(accepted[0].stored.matches(event::EventImage{"Stock", {}}));

  // Table holds <weakened filter, subscriber>.
  const auto table = broker.table();
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].second, std::vector<sim::NodeId>{kSub1});

  // Parent got the stage-2 form (author dropped too).
  const auto inserts = parent_->of<ReqInsert>();
  ASSERT_EQ(inserts.size(), 1u);
  EXPECT_EQ(inserts[0].child, broker.id());
  EXPECT_EQ(inserts[0].filter.constraints().size(), 2u);
}

TEST_F(BrokerTest, SimilarSubscriptionsShareOneEntryAndOneUpwardInsert) {
  Broker& broker = make_broker(1);
  // Same (year, conference, author), different titles: identical stage-1
  // weakened forms.
  send(kSub1, Subscribe{pub_filter(2002, "ICDCS", "Eugster", "A"), kSub1, 1});
  send(kSub2, Subscribe{pub_filter(2002, "ICDCS", "Eugster", "B"), kSub2, 1});

  const auto table = broker.table();
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table[0].second.size(), 2u);
  EXPECT_EQ(parent_->of<ReqInsert>().size(), 1u);
  EXPECT_EQ(broker.stats().associations, 2u);
}

TEST_F(BrokerTest, DissimilarSubscriptionsGetSeparateEntries) {
  Broker& broker = make_broker(1);
  send(kSub1, Subscribe{pub_filter(2002, "ICDCS", "Eugster", "A"), kSub1, 1});
  send(kSub2, Subscribe{pub_filter(1999, "SOSP", "Lamport", "B"), kSub2, 1});
  EXPECT_EQ(broker.table().size(), 2u);
  EXPECT_EQ(parent_->of<ReqInsert>().size(), 2u);
}

TEST_F(BrokerTest, EventForwardingMatchesAndFansOut) {
  Broker& broker = make_broker(1);
  send(kSub1, Subscribe{pub_filter(2002, "ICDCS", "Eugster", "A"), kSub1, 1});
  send(kSub2, Subscribe{pub_filter(2002, "ICDCS", "Eugster", "B"), kSub2, 1});
  sub1_->clear();
  sub2_->clear();

  const event::EventImage match{"Publication",
                                {{"year", Value{2002}},
                                 {"conference", Value{"ICDCS"}},
                                 {"author", Value{"Eugster"}},
                                 {"title", Value{"A"}}}};
  const event::EventImage miss{"Publication",
                               {{"year", Value{1980}},
                                {"conference", Value{"X"}},
                                {"author", Value{"Y"}},
                                {"title", Value{"Z"}}}};
  send(kParent, EventMsg{match});
  send(kParent, EventMsg{miss});

  // Both subscribers share the weakened entry, so both got the match; the
  // miss was filtered out here.
  EXPECT_EQ(sub1_->of<EventMsg>().size(), 1u);
  EXPECT_EQ(sub2_->of<EventMsg>().size(), 1u);

  const BrokerStats stats = broker.stats();
  EXPECT_EQ(stats.events_received, 2u);
  EXPECT_EQ(stats.events_matched, 1u);
  EXPECT_EQ(stats.events_forwarded, 2u);
}

TEST_F(BrokerTest, EventMatchingMultipleEntriesDeliversOncePerChild) {
  Broker& broker = make_broker(1);
  // Two different filters for the same subscriber, both matching one event.
  send(kSub1, Subscribe{pub_filter(2002, "ICDCS", "Eugster", "A"), kSub1, 1});
  send(kSub1, Subscribe{FilterBuilder{"Publication"}
                            .where("year", Op::Eq, Value{2002})
                            .build(),
                        kSub1, 2});
  ASSERT_EQ(broker.table().size(), 2u);
  sub1_->clear();

  send(kParent, EventMsg{event::EventImage{"Publication",
                                           {{"year", Value{2002}},
                                            {"conference", Value{"ICDCS"}},
                                            {"author", Value{"Eugster"}},
                                            {"title", Value{"A"}}}}});
  EXPECT_EQ(sub1_->of<EventMsg>().size(), 1u);  // deduplicated fan-out
}

TEST_F(BrokerTest, CoveringSearchRedirectsTowardHostingChild) {
  Broker& broker = make_broker(2, {}, 3);
  // Child broker 11 already hosts a similar (weakened) filter.
  send(11, ReqInsert{FilterBuilder{"Publication"}
                         .where("year", Op::Eq, Value{2002})
                         .where("conference", Op::Eq, Value{"ICDCS"})
                         .build(),
                     11});
  send(kSub1, Subscribe{pub_filter(2002, "ICDCS", "Eugster", "T"), kSub1, 9});

  const auto joins = sub1_->of<JoinAt>();
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_EQ(joins[0].target, 11u);
  EXPECT_EQ(joins[0].token, 9u);
  EXPECT_EQ(broker.table().size(), 1u);  // nothing stored for the subscriber
}

TEST_F(BrokerTest, NoCoveringRedirectsToSomeChild) {
  make_broker(2, {}, 3);
  send(kSub1, Subscribe{pub_filter(2002, "ICDCS", "Eugster", "T"), kSub1, 4});
  const auto joins = sub1_->of<JoinAt>();
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_GE(joins[0].target, 10u);
  EXPECT_LT(joins[0].target, 13u);
}

TEST_F(BrokerTest, RandomPlacementSkipsCoveringSearch) {
  BrokerConfig config;
  config.placement = Placement::Random;
  make_broker(2, config, 2);
  send(11, ReqInsert{FilterBuilder{"Publication"}
                         .where("year", Op::Eq, Value{2002})
                         .build(),
                     11});
  // Even with a covering entry at child 11, placement stays random; we only
  // check a redirect to *some* child happened (no local insert).
  send(kSub1, Subscribe{pub_filter(2002, "ICDCS", "Eugster", "T"), kSub1, 4});
  EXPECT_EQ(sub1_->of<JoinAt>().size(), 1u);
  EXPECT_TRUE(sub1_->of<AcceptedAt>().empty());
}

TEST_F(BrokerTest, WildcardOnLeastGeneralAttributeDescends) {
  // Title is used only at stage 0 → topmost stage j = 0 → attach at stage 1.
  make_broker(3, {}, 2);
  ConjunctiveFilter f = FilterBuilder{"Publication"}
                            .where("year", Op::Eq, Value{2002})
                            .where("conference", Op::Eq, Value{"ICDCS"})
                            .where("author", Op::Eq, Value{"Eugster"})
                            .where("title", Op::Any)
                            .build();
  send(kSub1, Subscribe{f, kSub1, 2});
  EXPECT_EQ(sub1_->of<JoinAt>().size(), 1u);  // stage 3 > 1: keep descending
  EXPECT_TRUE(sub1_->of<AcceptedAt>().empty());
}

TEST_F(BrokerTest, WildcardAuthorAttachesAtStageTwo) {
  // Author is used up to stage 1 → topmost j = 1 → attach at stage 2.
  Broker& broker = make_broker(2, {}, 2);
  ConjunctiveFilter f = FilterBuilder{"Publication"}
                            .where("year", Op::Eq, Value{2002})
                            .where("conference", Op::Eq, Value{"ICDCS"})
                            .where("author", Op::Any)
                            .where("title", Op::Any)
                            .build();
  send(kSub1, Subscribe{f, kSub1, 2});
  EXPECT_EQ(sub1_->of<AcceptedAt>().size(), 1u);
  ASSERT_EQ(broker.table().size(), 1u);
  EXPECT_EQ(broker.table()[0].second, std::vector<sim::NodeId>{kSub1});
}

TEST_F(BrokerTest, WildcardEverywhereCapsAtRoot) {
  // Year is used at every stage → j = top stage; a stage-3 root must keep
  // the subscription itself rather than redirect forever.
  Broker& broker = make_broker(3, {}, 2, /*with_parent=*/false);
  ConjunctiveFilter f = FilterBuilder{"Publication"}
                            .where("year", Op::Any)
                            .where("conference", Op::Any)
                            .where("author", Op::Any)
                            .where("title", Op::Any)
                            .build();
  send(kSub1, Subscribe{f, kSub1, 2});
  EXPECT_EQ(sub1_->of<AcceptedAt>().size(), 1u);
  EXPECT_EQ(broker.table().size(), 1u);
}

TEST_F(BrokerTest, UnsubRemovesLeaseAndPropagatesUpward) {
  Broker& broker = make_broker(1);
  const ConjunctiveFilter f = pub_filter(2002, "ICDCS", "Eugster", "A");
  send(kSub1, Subscribe{f, kSub1, 1});
  const auto stored = sub1_->of<AcceptedAt>()[0].stored;
  send(kSub2, Subscribe{pub_filter(2002, "ICDCS", "Eugster", "B"), kSub2, 1});

  send(kSub1, Unsub{stored, kSub1});
  ASSERT_EQ(broker.table().size(), 1u);  // kSub2 still holds the entry
  EXPECT_TRUE(parent_->of<Unsub>().empty());

  send(kSub2, Unsub{stored, kSub2});
  EXPECT_TRUE(broker.table().empty());
  EXPECT_EQ(parent_->of<Unsub>().size(), 1u);  // last lease gone: tell parent
}

TEST_F(BrokerTest, LeasesExpireWithoutRenewal) {
  BrokerConfig config;
  config.ttl = 1'000'000;
  config.renew_interval = 500'000;
  config.reap_interval = 1'000'000;
  Broker& broker = make_broker(1, config);
  send(kSub1, Subscribe{pub_filter(2002, "ICDCS", "Eugster", "A"), kSub1, 1});
  ASSERT_EQ(broker.table().size(), 1u);

  // 3×TTL plus a reap interval without renewals: entry must be gone.
  sched_.run_until(sched_.now() + 5'000'000);
  EXPECT_TRUE(broker.table().empty());
}

TEST_F(BrokerTest, RenewalKeepsLeaseAlive) {
  BrokerConfig config;
  config.ttl = 1'000'000;
  config.renew_interval = 500'000;
  config.reap_interval = 1'000'000;
  Broker& broker = make_broker(1, config);
  send(kSub1, Subscribe{pub_filter(2002, "ICDCS", "Eugster", "A"), kSub1, 1});
  const auto stored = sub1_->of<AcceptedAt>()[0].stored;

  for (int i = 0; i < 10; ++i) {
    sched_.run_until(sched_.now() + 1'000'000);
    net_.send(kSub1, broker.id(), encode(Packet{Renew{stored, kSub1}}));
    sched_.run();
  }
  EXPECT_EQ(broker.table().size(), 1u);
}

TEST_F(BrokerTest, BrokerRenewsSubmittedFiltersUpward) {
  BrokerConfig config;
  config.ttl = 1'000'000;
  config.renew_interval = 400'000;
  make_broker(1, config);
  send(kSub1, Subscribe{pub_filter(2002, "ICDCS", "Eugster", "A"), kSub1, 1});
  parent_->clear();
  sched_.run_until(sched_.now() + 2'000'000);
  // Periodic renewal-by-reinsertion reached the parent several times.
  EXPECT_GE(parent_->of<ReqInsert>().size(), 2u);
}

TEST_F(BrokerTest, NoSchemaFallsBackToIdentityWeakening) {
  make_broker(1);
  const ConjunctiveFilter f = FilterBuilder{"Stock"}  // never advertised here
                                  .where("symbol", Op::Eq, Value{"Foo"})
                                  .where("price", Op::Lt, Value{10.0})
                                  .build();
  send(kSub1, Subscribe{f, kSub1, 1});
  const auto accepted = sub1_->of<AcceptedAt>();
  ASSERT_EQ(accepted.size(), 1u);
  EXPECT_EQ(accepted[0].stored, f);  // stored exactly, still sound
  const auto inserts = parent_->of<ReqInsert>();
  ASSERT_EQ(inserts.size(), 1u);
  EXPECT_EQ(inserts[0].filter, f);
}

TEST_F(BrokerTest, ControlTrafficCounted) {
  Broker& broker = make_broker(1);
  send(kSub1, Subscribe{pub_filter(2002, "ICDCS", "Eugster", "A"), kSub1, 1});
  // Advertise + Subscribe are control traffic; events are not.
  EXPECT_EQ(broker.stats().control_received, 2u);
  send(kParent, EventMsg{event::EventImage{"Publication", {}}});
  EXPECT_EQ(broker.stats().control_received, 2u);
  EXPECT_EQ(broker.stats().events_received, 1u);
}

}  // namespace
}  // namespace cake::routing
