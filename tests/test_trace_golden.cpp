// Satellite 2: false-positive attribution golden test.
//
// A hand-built 3-stage chain overlay (one broker per stage) with the §5.2
// bibliographic G_c — title dropped at stage 1, author at stage 2,
// conference at stage 3 — and five hand-picked events whose journeys are
// fully predictable:
//
//   e1 (2000, ICDCS, ann, t1)   delivered (matches everything)
//   e2 (2000, ICDCS, ann, t2)   spurious: only the weakened-away *title*
//                               differs, so every broker forwards it and the
//                               subscriber's exact check kills it — one
//                               spurious delivery + 3 wasted hops on "title"
//   e3 (2000, ICDCS, bob, t1)   rejected at stage 1 (author checked there)
//   e4 (2000, VLDB,  ann, t1)   rejected at stage 2 (conference checked)
//   e5 (1999, ICDCS, ann, t1)   rejected at stage 3 (year checked)
//
// Every count below is computed by hand from that table and pinned.
#include <gtest/gtest.h>

#include "cake/metrics/metrics.hpp"
#include "cake/routing/overlay.hpp"
#include "cake/trace/collector.hpp"
#include "cake/trace/oracle.hpp"
#include "cake/workload/generators.hpp"
#include "cake/workload/types.hpp"

namespace cake {
namespace {

event::EventImage publication(std::int64_t year, std::string conference,
                              std::string author, std::string title) {
  return event::EventImage{"Publication",
                           {{"year", value::Value{year}},
                            {"conference", value::Value{std::move(conference)}},
                            {"author", value::Value{std::move(author)}},
                            {"title", value::Value{std::move(title)}}}};
}

class TraceGolden : public ::testing::Test {
protected:
  void SetUp() override {
    workload::ensure_types_registered();
    routing::OverlayConfig config;
    config.stage_counts = {1, 1, 1};  // one broker per stage: a fixed path
    config.trace.enabled = true;
    overlay_ = std::make_unique<routing::Overlay>(config);

    publisher_ = &overlay_->add_publisher();
    publisher_->advertise(workload::BiblioGenerator::schema());
    overlay_->run();

    subscriber_ = &overlay_->add_subscriber();
    subscriber_->subscribe(filter::FilterBuilder{"Publication"}
                               .where("year", filter::Op::Eq, value::Value{2000})
                               .where("conference", filter::Op::Eq,
                                      value::Value{std::string{"ICDCS"}})
                               .where("author", filter::Op::Eq,
                                      value::Value{std::string{"ann"}})
                               .where("title", filter::Op::Eq,
                                      value::Value{std::string{"t1"}})
                               .build(),
                           {});
    overlay_->run();
    // No wildcards: the covering search must host it at the stage-1 leaf.
    ASSERT_EQ(subscriber_->accepted_at(1),
              std::optional<sim::NodeId>{stage_broker(1)});

    publisher_->publish(publication(2000, "ICDCS", "ann", "t1"));  // e1
    publisher_->publish(publication(2000, "ICDCS", "ann", "t2"));  // e2
    publisher_->publish(publication(2000, "ICDCS", "bob", "t1"));  // e3
    publisher_->publish(publication(2000, "VLDB", "ann", "t1"));   // e4
    publisher_->publish(publication(1999, "ICDCS", "ann", "t1"));  // e5
    overlay_->run();

    collector_.add_all(overlay_->tracer()->spans());
  }

  [[nodiscard]] sim::NodeId stage_broker(std::size_t stage) {
    return overlay_->brokers_at(stage).front()->id();
  }

  /// Trace id of the n-th published event (0-based).
  [[nodiscard]] trace::TraceId event(std::size_t n) const {
    return (static_cast<std::uint64_t>(publisher_->id()) << 32) | n;
  }

  std::unique_ptr<routing::Overlay> overlay_;
  routing::PublisherNode* publisher_ = nullptr;
  routing::SubscriberNode* subscriber_ = nullptr;
  trace::Collector collector_;
};

TEST_F(TraceGolden, AttributionPinnedToHandComputedCounts) {
  const trace::Attribution attribution = collector_.attribution();
  // Exactly one spurious delivery, charged to "title" — the attribute the
  // leaf's weakened filter could not check.
  EXPECT_EQ(attribution.total(), 1u);
  ASSERT_EQ(attribution.by_attribute.size(), 1u);
  EXPECT_EQ(attribution.by_attribute.at("title"), 1u);
  // e2 travelled publisher -> stage 3 -> stage 2 -> stage 1 before dying at
  // the subscriber: three wasted broker forwards, all charged to "title".
  ASSERT_EQ(attribution.spurious_hops_by_attribute.size(), 1u);
  EXPECT_EQ(attribution.spurious_hops_by_attribute.at("title"), 3u);
}

TEST_F(TraceGolden, RejectionStagesPinned) {
  const auto rejected = collector_.rejected_at_stage();
  ASSERT_EQ(rejected.size(), 3u);
  EXPECT_EQ(rejected.at(1), 1u);  // e3: author first checked at stage 1
  EXPECT_EQ(rejected.at(2), 1u);  // e4: conference first checked at stage 2
  EXPECT_EQ(rejected.at(3), 1u);  // e5: year checked everywhere, dies at root
}

TEST_F(TraceGolden, StageRollupsPinned) {
  const auto rollups = collector_.stage_rollups();
  ASSERT_EQ(rollups.size(), 4u);
  // stage 0: e1 delivered + e2 spurious.
  EXPECT_EQ(rollups[0].hops, 2u);
  EXPECT_EQ(rollups[0].matched, 1u);
  // stage 1 sees e1, e2, e3 (e4/e5 died above); forwards e1, e2.
  EXPECT_EQ(rollups[1].hops, 3u);
  EXPECT_EQ(rollups[1].matched, 2u);
  // stage 2 sees e1..e4; forwards all but e4.
  EXPECT_EQ(rollups[2].hops, 4u);
  EXPECT_EQ(rollups[2].matched, 3u);
  // stage 3 (root) sees all five; forwards all but e5.
  EXPECT_EQ(rollups[3].hops, 5u);
  EXPECT_EQ(rollups[3].matched, 4u);
}

TEST_F(TraceGolden, DeliveredJourneyShowsWeakenedAttributesPerStage) {
  const trace::Journey* journey = collector_.find(event(0));  // e1
  ASSERT_NE(journey, nullptr);
  EXPECT_TRUE(journey->delivered());
  ASSERT_EQ(journey->hops.size(), 4u);  // 3 brokers + subscriber

  // Each broker records exactly the attributes its stage weakened away.
  const auto weakened_at = [&](std::size_t stage) {
    for (const trace::TraceSpan* span : journey->broker_spans())
      if (span->stage == stage) return span->weakened_attrs_hit;
    return std::vector<std::string>{};
  };
  EXPECT_EQ(weakened_at(1), (std::vector<std::string>{"title"}));
  EXPECT_EQ(weakened_at(2), (std::vector<std::string>{"author", "title"}));
  EXPECT_EQ(weakened_at(3),
            (std::vector<std::string>{"conference", "author", "title"}));

  // One link-latency tick per hop down the fixed chain.
  ASSERT_TRUE(journey->publish.has_value());
  const sim::Time t0 = journey->publish->ticks;
  EXPECT_EQ(journey->hops[0].ticks - t0, 1000u);
  EXPECT_EQ(journey->hops[3].ticks - t0, 4000u);
}

TEST_F(TraceGolden, ReconcilesWithMetricsAndOracle) {
  std::vector<metrics::NodeLoad> loads = metrics::broker_loads(*overlay_);
  const auto sub_loads = metrics::subscriber_loads(*overlay_);
  loads.insert(loads.end(), sub_loads.begin(), sub_loads.end());
  const auto summaries = metrics::summarize_by_stage(loads, 5, 1);
  EXPECT_EQ(metrics::spurious_deliveries(summaries), 1u);
  EXPECT_EQ(collector_.attribution().total(),
            metrics::spurious_deliveries(summaries));

  // Only e1 is a legitimate delivery.
  const auto expected = [this](trace::TraceId id, sim::NodeId node) {
    return id == event(0) && node == subscriber_->id();
  };
  const trace::OracleReport report = trace::verify_journeys(
      collector_, {event(0), event(1), event(2), event(3), event(4)},
      {subscriber_->id()}, expected);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.deliveries_verified, 1u);
  EXPECT_EQ(report.spurious_arrivals, 1u);
  // e1 and e2 each walked 3 broker hops to reach the subscriber.
  EXPECT_EQ(report.path_hops_verified, 6u);
}

}  // namespace
}  // namespace cake
