// Literal reproductions of the paper's worked examples: the §4 Example 5
// four-stage weakening chain (f → g → h → i) and the §4.1 Example 6
// attribute-stage association, asserted filter by filter.
#include <gtest/gtest.h>

#include "cake/weaken/weaken.hpp"
#include "cake/workload/types.hpp"

namespace cake {
namespace {

using filter::AttributeConstraint;
using filter::ConjunctiveFilter;
using filter::FilterBuilder;
using filter::Op;
using value::Value;

const reflect::TypeRegistry& reg() { return reflect::TypeRegistry::global(); }

class PaperExample5 : public ::testing::Test {
protected:
  PaperExample5() { workload::ensure_types_registered(); }

  // The paper's stage-0 subscriber filters.
  ConjunctiveFilter f1_ = FilterBuilder{"Stock"}
                              .where("symbol", Op::Eq, Value{"DEF"})
                              .where("price", Op::Lt, Value{10.0})
                              .build();
  ConjunctiveFilter f2_ = FilterBuilder{"Stock"}
                              .where("symbol", Op::Eq, Value{"DEF"})
                              .where("price", Op::Lt, Value{11.0})
                              .build();
  ConjunctiveFilter f3_ = FilterBuilder{"Stock"}
                              .where("symbol", Op::Eq, Value{"GHI"})
                              .where("price", Op::Lt, Value{8.0})
                              .build();
  ConjunctiveFilter f4_ = FilterBuilder{"Auction"}
                              .where("product", Op::Eq, Value{"Vehicle"})
                              .where("kind", Op::Eq, Value{"Car"})
                              .where("capacity", Op::Lt, Value{2000})
                              .where("price", Op::Lt, Value{10'000.0})
                              .build();

  // Example 6's G_Auction, translated to our model (the paper counts the
  // class tuple as attribute 1; our type test is distinguished, so the
  // stage sets list only the value attributes):
  //   s0: all, s1: drop price, s2: also drop capacity, s3: type only.
  weaken::StageSchema auction_schema_{
      "Auction",
      {{"product", "kind", "capacity", "price"},
       {"product", "kind", "capacity"},
       {"product", "kind"},
       {}}};
  weaken::StageSchema stock_schema_{
      "Stock",
      {{"symbol", "price"}, {"symbol", "price"}, {"symbol"}, {}}};
};

TEST_F(PaperExample5, Stage1_G1CoversF1AndF2ViaRelaxation) {
  // "The weakening is done such that the weakened filters cover one or
  // more user-level filters": g1 = (class Stock)(symbol DEF)(price < 11).
  const ConjunctiveFilter g1 = weaken::join_filters(f1_, f2_, reg());
  const ConjunctiveFilter expected = FilterBuilder{"Stock"}
                                         .where("symbol", Op::Eq, Value{"DEF"})
                                         .where("price", Op::Lt, Value{11.0})
                                         .build();
  EXPECT_EQ(g1, expected);
  EXPECT_TRUE(covers(g1, f1_, reg()));
  EXPECT_TRUE(covers(g1, f2_, reg()));

  // g2 = f3 unchanged (nothing to merge with), g3 = f4 minus price.
  const ConjunctiveFilter g3 = weaken::weaken_filter(f4_, auction_schema_, 1);
  ASSERT_EQ(g3.constraints().size(), 3u);
  EXPECT_EQ(g3.constraints()[0],
            (AttributeConstraint{"product", Op::Eq, Value{"Vehicle"}}));
  EXPECT_EQ(g3.constraints()[1],
            (AttributeConstraint{"kind", Op::Eq, Value{"Car"}}));
  EXPECT_EQ(g3.constraints()[2],
            (AttributeConstraint{"capacity", Op::Lt, Value{2000}}));
  EXPECT_TRUE(covers(g3, f4_, reg()));

  // "In general, as a result there will be less filters at this stage":
  // {f1..f4} collapse under {g1, g2=f3, g3} to exactly three.
  const auto stage1 = weaken::collapse(
      {g1, f3_, g3, weaken::weaken_filter(f1_, stock_schema_, 1),
       weaken::weaken_filter(f2_, stock_schema_, 1)},
      reg());
  EXPECT_EQ(stage1.size(), 3u);
}

TEST_F(PaperExample5, Stage2_AttributesAreRemovedOutright) {
  // "When weakening, the least general set of attributes which were
  // already weakened are removed": h1 = (class Stock)(symbol DEF).
  const ConjunctiveFilter g1 = weaken::join_filters(f1_, f2_, reg());
  const ConjunctiveFilter h1 = weaken::weaken_filter(g1, stock_schema_, 2);
  EXPECT_EQ(h1, FilterBuilder{"Stock"}.where("symbol", Op::Eq, Value{"DEF"}).build());

  const ConjunctiveFilter h2 = weaken::weaken_filter(f3_, stock_schema_, 2);
  EXPECT_EQ(h2, FilterBuilder{"Stock"}.where("symbol", Op::Eq, Value{"GHI"}).build());

  const ConjunctiveFilter h3 = weaken::weaken_filter(f4_, auction_schema_, 2);
  const ConjunctiveFilter expected_h3 = FilterBuilder{"Auction"}
                                            .where("product", Op::Eq, Value{"Vehicle"})
                                            .where("kind", Op::Eq, Value{"Car"})
                                            .build();
  EXPECT_EQ(h3, expected_h3);
  EXPECT_TRUE(covers(h1, g1, reg()));
  EXPECT_TRUE(covers(h3, f4_, reg()));
}

TEST_F(PaperExample5, Stage3_FilteringOnTypeOnly) {
  // "At this stage filtering is done only on the type of events":
  // i1 = (class Stock), i2 = (class Auction).
  const ConjunctiveFilter i1 = weaken::weaken_filter(f1_, stock_schema_, 3);
  EXPECT_TRUE(i1.constraints().empty());
  EXPECT_EQ(i1.type().name, "Stock");

  const ConjunctiveFilter i2 = weaken::weaken_filter(f4_, auction_schema_, 3);
  EXPECT_TRUE(i2.constraints().empty());
  EXPECT_EQ(i2.type().name, "Auction");

  // And f1, f2, f3 all weaken to the SAME i1: one filter at the root.
  EXPECT_EQ(weaken::weaken_filter(f2_, stock_schema_, 3), i1);
  EXPECT_EQ(weaken::weaken_filter(f3_, stock_schema_, 3), i1);
  const auto roots = weaken::collapse(
      {i1, weaken::weaken_filter(f2_, stock_schema_, 3),
       weaken::weaken_filter(f3_, stock_schema_, 3), i2},
      reg());
  EXPECT_EQ(roots.size(), 2u);  // exactly i1 and i2
}

TEST_F(PaperExample5, WholeChainPreservesEveryMatchingEvent) {
  // Proposition 1 across the whole worked chain: any event accepted by a
  // stage-0 filter is accepted by its weakened form at every stage.
  const workload::Stock match{"DEF", 9.5, 100};
  const workload::Stock wrong_symbol{"XYZ", 9.5, 100};
  const workload::CarAuction car{9'000.0, 1500, 4};

  const auto image = event::image_of(match);
  for (std::size_t stage = 0; stage <= 3; ++stage) {
    EXPECT_TRUE(weaken::weaken_filter(f1_, stock_schema_, stage)
                    .matches(image, reg()))
        << "stage " << stage;
  }
  // Non-matching events may survive weak stages (approximate filtering is
  // allowed to be generous) but must die at stage 0.
  EXPECT_FALSE(f1_.matches(event::image_of(wrong_symbol), reg()));
  EXPECT_FALSE(f1_.matches(event::image_of(car), reg()));
}

TEST_F(PaperExample5, Example6AssociationMatchesTheStandardFilterPrefixes) {
  // Example 6: s1 keeps "the first four attributes of the standard
  // subscription filter" (class + three value attributes), s2 the first
  // three, s3 only the class. Our schema lists the value attributes, so
  // the per-stage sizes are 4, 3, 2, 0.
  EXPECT_EQ(auction_schema_.attributes_at(0).size(), 4u);
  EXPECT_EQ(auction_schema_.attributes_at(1).size(), 3u);
  EXPECT_EQ(auction_schema_.attributes_at(2).size(), 2u);
  EXPECT_EQ(auction_schema_.attributes_at(3).size(), 0u);
  // Each stage's set is a prefix of the previous (most-general-first).
  for (std::size_t s = 1; s < auction_schema_.stages(); ++s) {
    const auto& wider = auction_schema_.attributes_at(s - 1);
    const auto& narrower = auction_schema_.attributes_at(s);
    for (std::size_t i = 0; i < narrower.size(); ++i)
      EXPECT_EQ(narrower[i], wider[i]);
  }
}

}  // namespace
}  // namespace cake
