// Unit tests for the discrete-event scheduler and the counted network.
#include "cake/sim/sim.hpp"

#include <gtest/gtest.h>

namespace cake::sim {
namespace {

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Scheduler, TiesRunInPostOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) s.schedule_at(10, [&, i] { order.push_back(i); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  s.schedule_at(100, [] {});
  s.run();
  bool ran = false;
  s.schedule_at(5, [&] { ran = true; });  // in the past
  s.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), 100u);  // time never goes backwards
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler s;
  Time fired_at = 0;
  s.schedule_at(50, [&] {
    s.schedule_after(25, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired_at, 75u);
}

TEST(Scheduler, ClosuresMayScheduleMoreWork) {
  Scheduler s;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) s.schedule_after(1, tick);
  };
  s.schedule_at(0, tick);
  EXPECT_EQ(s.run(), 10u);
  EXPECT_EQ(count, 10);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  EXPECT_TRUE(s.empty());
  s.schedule_at(1, [] {});
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, MaxStepsBoundsExecution) {
  Scheduler s;
  for (int i = 0; i < 10; ++i) s.schedule_at(i, [] {});
  EXPECT_EQ(s.run(3), 3u);
  EXPECT_EQ(s.pending(), 7u);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  std::vector<Time> fired;
  for (Time t : {10u, 20u, 30u, 40u}) s.schedule_at(t, [&, t] { fired.push_back(t); });
  s.run_until(30);
  EXPECT_EQ(fired, (std::vector<Time>{10, 20}));  // strictly before deadline
  EXPECT_EQ(s.now(), 30u);
  s.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Network, DeliversWithDefaultLatency) {
  Scheduler sched;
  Network net{sched, 500};
  Time delivered_at = 0;
  NodeId from_seen = kNoNode;
  net.attach(2, [&](NodeId from, const Network::Payload&) {
    delivered_at = sched.now();
    from_seen = from;
  });
  net.send(1, 2, {std::byte{0xab}});
  sched.run();
  EXPECT_EQ(delivered_at, 500u);
  EXPECT_EQ(from_seen, 1u);
}

TEST(Network, PerLinkLatencyOverride) {
  Scheduler sched;
  Network net{sched, 500};
  net.set_latency(1, 2, 50);
  Time delivered_at = 0;
  net.attach(2, [&](NodeId, const Network::Payload&) { delivered_at = sched.now(); });
  net.send(1, 2, {});
  sched.run();
  EXPECT_EQ(delivered_at, 50u);
}

TEST(Network, CountsMessagesAndBytes) {
  Scheduler sched;
  Network net{sched};
  net.attach(2, [](NodeId, const Network::Payload&) {});
  net.send(1, 2, Network::Payload(10));
  net.send(1, 2, Network::Payload(5));
  net.send(2, 1, Network::Payload(7));
  EXPECT_EQ(net.total_messages(), 3u);
  EXPECT_EQ(net.total_bytes(), 22u);
  EXPECT_EQ(net.link(1, 2).messages, 2u);
  EXPECT_EQ(net.link(1, 2).bytes, 15u);
  EXPECT_EQ(net.link(2, 1).messages, 1u);
  EXPECT_EQ(net.link(9, 9).messages, 0u);
}

TEST(Network, ReceivedByCountsDeliveries) {
  Scheduler sched;
  Network net{sched};
  net.attach(2, [](NodeId, const Network::Payload&) {});
  net.send(1, 2, {});
  net.send(1, 2, {});
  net.send(1, 3, {});  // node 3 is detached: counted as sent, not received
  sched.run();
  EXPECT_EQ(net.received_by(2), 2u);
  EXPECT_EQ(net.received_by(3), 0u);
  EXPECT_EQ(net.total_messages(), 3u);
}

TEST(Network, DetachedPeerDropsSilently) {
  Scheduler sched;
  Network net{sched};
  net.send(1, 99, Network::Payload(4));
  EXPECT_NO_THROW(sched.run());
}

TEST(Network, PayloadContentArrivesIntact) {
  Scheduler sched;
  Network net{sched};
  Network::Payload received;
  net.attach(5, [&](NodeId, const Network::Payload& p) { received = p; });
  const Network::Payload sent{std::byte{1}, std::byte{2}, std::byte{3}};
  net.send(4, 5, sent);
  sched.run();
  EXPECT_EQ(received, sent);
}

TEST(Network, HandlerMaySendMore) {
  Scheduler sched;
  Network net{sched, 10};
  int hops = 0;
  net.attach(1, [&](NodeId, const Network::Payload& p) {
    if (++hops < 5) net.send(1, 2, p);
  });
  net.attach(2, [&](NodeId, const Network::Payload& p) { net.send(2, 1, p); });
  net.send(0, 1, {});
  sched.run();
  EXPECT_EQ(hops, 5);
  EXPECT_EQ(sched.now(), 10u * 9);  // 0→1, then 4 round trips of 2 hops
}

}  // namespace
}  // namespace cake::sim
