// Unit tests for the discrete-event scheduler and the counted network.
#include "cake/sim/sim.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "cake/sim/chaos.hpp"

namespace cake::sim {
namespace {

TEST(Scheduler, RunsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Scheduler, TiesRunInPostOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) s.schedule_at(10, [&, i] { order.push_back(i); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  s.schedule_at(100, [] {});
  s.run();
  bool ran = false;
  s.schedule_at(5, [&] { ran = true; });  // in the past
  s.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(s.now(), 100u);  // time never goes backwards
}

TEST(Scheduler, ScheduleAfterIsRelative) {
  Scheduler s;
  Time fired_at = 0;
  s.schedule_at(50, [&] {
    s.schedule_after(25, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired_at, 75u);
}

TEST(Scheduler, ClosuresMayScheduleMoreWork) {
  Scheduler s;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 10) s.schedule_after(1, tick);
  };
  s.schedule_at(0, tick);
  EXPECT_EQ(s.run(), 10u);
  EXPECT_EQ(count, 10);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
  Scheduler s;
  EXPECT_FALSE(s.step());
  EXPECT_TRUE(s.empty());
  s.schedule_at(1, [] {});
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, MaxStepsBoundsExecution) {
  Scheduler s;
  for (int i = 0; i < 10; ++i) s.schedule_at(i, [] {});
  EXPECT_EQ(s.run(3), 3u);
  EXPECT_EQ(s.pending(), 7u);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  std::vector<Time> fired;
  for (Time t : {10u, 20u, 30u, 40u}) s.schedule_at(t, [&, t] { fired.push_back(t); });
  s.run_until(30);
  // Closed on the right: work scheduled exactly at the deadline runs too.
  EXPECT_EQ(fired, (std::vector<Time>{10, 20, 30}));
  EXPECT_EQ(s.now(), 30u);
  s.run();
  EXPECT_EQ(fired.size(), 4u);
}

// Pins the boundary contract: [.., deadline] is *inclusive*. The chaos
// controller schedules heals and restarts at exact TTL multiples, and
// run_until(heal_time) must execute them rather than strand them one step
// into the future.
TEST(Scheduler, RunUntilBoundaryIsInclusive) {
  Scheduler s;
  Time ran_at = 0;
  s.schedule_at(100, [&] { ran_at = s.now(); });
  s.run_until(100);
  EXPECT_EQ(ran_at, 100u);  // executed, with now() == deadline inside
  EXPECT_EQ(s.now(), 100u);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, RunUntilDrainsCascadesAtTheDeadline) {
  Scheduler s;
  int depth = 0;
  // Work spawned *at* the deadline with zero delay still belongs to the
  // closed interval and must run before run_until returns.
  std::function<void()> chain = [&] {
    if (++depth < 3) s.schedule_after(0, chain);
  };
  s.schedule_at(50, chain);
  s.run_until(50);
  EXPECT_EQ(depth, 3);
  EXPECT_EQ(s.now(), 50u);
}

TEST(Scheduler, RunUntilIsIdempotentAtTheDeadline) {
  Scheduler s;
  int runs = 0;
  s.schedule_at(80, [&] { ++runs; });
  s.run_until(80);
  s.run_until(80);  // nothing left at or before the deadline
  EXPECT_EQ(runs, 1);
  s.schedule_background_at(81, [&] { ++runs; });
  s.run_until(80);  // strictly-later work stays pending
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Network, DeliversWithDefaultLatency) {
  Scheduler sched;
  Network net{sched, 500};
  Time delivered_at = 0;
  NodeId from_seen = kNoNode;
  net.attach(2, [&](NodeId from, const Network::Payload&) {
    delivered_at = sched.now();
    from_seen = from;
  });
  net.send(1, 2, {std::byte{0xab}});
  sched.run();
  EXPECT_EQ(delivered_at, 500u);
  EXPECT_EQ(from_seen, 1u);
}

TEST(Network, PerLinkLatencyOverride) {
  Scheduler sched;
  Network net{sched, 500};
  net.set_latency(1, 2, 50);
  Time delivered_at = 0;
  net.attach(2, [&](NodeId, const Network::Payload&) { delivered_at = sched.now(); });
  net.send(1, 2, {});
  sched.run();
  EXPECT_EQ(delivered_at, 50u);
}

TEST(Network, CountsMessagesAndBytes) {
  Scheduler sched;
  Network net{sched};
  net.attach(2, [](NodeId, const Network::Payload&) {});
  net.send(1, 2, Network::Payload(std::vector<std::byte>(10)));
  net.send(1, 2, Network::Payload(std::vector<std::byte>(5)));
  net.send(2, 1, Network::Payload(std::vector<std::byte>(7)));
  EXPECT_EQ(net.total_messages(), 3u);
  EXPECT_EQ(net.total_bytes(), 22u);
  EXPECT_EQ(net.link(1, 2).messages, 2u);
  EXPECT_EQ(net.link(1, 2).bytes, 15u);
  EXPECT_EQ(net.link(2, 1).messages, 1u);
  EXPECT_EQ(net.link(9, 9).messages, 0u);
}

TEST(Network, ReceivedByCountsDeliveries) {
  Scheduler sched;
  Network net{sched};
  net.attach(2, [](NodeId, const Network::Payload&) {});
  net.send(1, 2, {});
  net.send(1, 2, {});
  net.send(1, 3, {});  // node 3 is detached: counted as sent, not received
  sched.run();
  EXPECT_EQ(net.received_by(2), 2u);
  EXPECT_EQ(net.received_by(3), 0u);
  EXPECT_EQ(net.total_messages(), 3u);
}

TEST(Network, DetachedPeerDropsSilently) {
  Scheduler sched;
  Network net{sched};
  net.send(1, 99, Network::Payload(std::vector<std::byte>(4)));
  EXPECT_NO_THROW(sched.run());
}

TEST(Network, PayloadContentArrivesIntact) {
  Scheduler sched;
  Network net{sched};
  Network::Payload received;
  net.attach(5, [&](NodeId, const Network::Payload& p) { received = p; });
  const Network::Payload sent{std::byte{1}, std::byte{2}, std::byte{3}};
  net.send(4, 5, sent);
  sched.run();
  EXPECT_EQ(received, sent);
}

TEST(Network, HandlerMaySendMore) {
  Scheduler sched;
  Network net{sched, 10};
  int hops = 0;
  net.attach(1, [&](NodeId, const Network::Payload& p) {
    if (++hops < 5) net.send(1, 2, p);
  });
  net.attach(2, [&](NodeId, const Network::Payload& p) { net.send(2, 1, p); });
  net.send(0, 1, {});
  sched.run();
  EXPECT_EQ(hops, 5);
  EXPECT_EQ(sched.now(), 10u * 9);  // 0→1, then 4 round trips of 2 hops
}

// ---- fault interception ----------------------------------------------------

TEST(Network, InterceptorDropsCountIntoDropped) {
  Scheduler sched;
  Network net{sched};
  std::uint64_t seen = 0;
  net.attach(2, [&](NodeId, const Network::Payload&) { ++seen; });
  net.set_interceptor([](NodeId, NodeId, const Network::Payload&) {
    return Network::FaultAction{.copies = 0, .extra_latency = 0};
  });
  for (int i = 0; i < 7; ++i) net.send(1, 2, Network::Payload(std::vector<std::byte>(1)));
  sched.run();
  EXPECT_EQ(seen, 0u);
  EXPECT_EQ(net.dropped(), 7u);
  EXPECT_EQ(net.delivered(), 0u);
  EXPECT_EQ(net.total_messages(), 7u);
}

TEST(Network, InterceptorDuplicatesDeliverEveryCopy) {
  Scheduler sched;
  Network net{sched};
  std::uint64_t seen = 0;
  net.attach(2, [&](NodeId, const Network::Payload&) { ++seen; });
  net.set_interceptor([](NodeId, NodeId, const Network::Payload&) {
    return Network::FaultAction{.copies = 3, .extra_latency = 0};
  });
  for (int i = 0; i < 5; ++i) net.send(1, 2, Network::Payload(std::vector<std::byte>(1)));
  sched.run();
  EXPECT_EQ(seen, 15u);
  EXPECT_EQ(net.duplicated(), 10u);  // two extra copies per send
  EXPECT_EQ(net.delivered(), 15u);
  EXPECT_EQ(net.total_messages(), 5u);
}

TEST(Network, InterceptorJitterReordersDeliveries) {
  Scheduler sched;
  Network net{sched, 100};
  std::vector<int> order;
  net.attach(2, [&](NodeId, const Network::Payload& p) {
    order.push_back(static_cast<int>(p[0]));
  });
  // First message gets a large extra delay; the second overtakes it.
  bool first = true;
  net.set_interceptor([&first](NodeId, NodeId, const Network::Payload&) {
    const Time extra = first ? 1000 : 0;
    first = false;
    return Network::FaultAction{.copies = 1, .extra_latency = extra};
  });
  net.send(1, 2, {std::byte{1}});
  net.send(1, 2, {std::byte{2}});
  sched.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_EQ(net.delivered(), 2u);
}

TEST(Network, InterceptorClearsWithEmptyFunction) {
  Scheduler sched;
  Network net{sched};
  std::uint64_t seen = 0;
  net.attach(2, [&](NodeId, const Network::Payload&) { ++seen; });
  net.set_interceptor([](NodeId, NodeId, const Network::Payload&) {
    return Network::FaultAction{.copies = 0, .extra_latency = 0};
  });
  net.send(1, 2, Network::Payload(std::vector<std::byte>(1)));
  net.set_interceptor({});
  net.send(1, 2, Network::Payload(std::vector<std::byte>(1)));
  sched.run();
  EXPECT_EQ(seen, 1u);
  EXPECT_EQ(net.dropped(), 1u);
}

// ---- loss-rate determinism and conservation --------------------------------

namespace {

/// Sends 2×`batch` one-byte messages 1→2, switching the loss process on
/// mid-run, and returns the delivered payload sequence.
std::vector<int> lossy_run(double rate, std::uint64_t seed, int batch) {
  Scheduler sched;
  Network net{sched, 10};
  std::vector<int> delivered;
  net.attach(2, [&](NodeId, const Network::Payload& p) {
    delivered.push_back(static_cast<int>(p[0]));
  });
  for (int i = 0; i < batch; ++i)
    net.send(1, 2, {static_cast<std::byte>(i)});
  sched.run();
  net.set_loss_rate(rate, seed);  // mid-run: earlier traffic was clean
  for (int i = batch; i < 2 * batch; ++i)
    net.send(1, 2, {static_cast<std::byte>(i)});
  sched.run();
  EXPECT_EQ(net.delivered() + net.dropped(), net.total_messages());
  return delivered;
}

}  // namespace

TEST(Network, MidRunLossRateIsDeterministicPerSeed) {
  const std::vector<int> a = lossy_run(0.4, 99, 50);
  const std::vector<int> b = lossy_run(0.4, 99, 50);
  EXPECT_EQ(a, b) << "same seed must drop the same messages";
  EXPECT_LT(a.size(), 100u) << "a 40% loss process dropped nothing";
  EXPECT_GE(a.size(), 50u) << "pre-fault traffic must never be dropped";

  // Some other seed must make a different choice somewhere (50 coin flips).
  bool any_differ = false;
  for (std::uint64_t seed = 100; seed < 105 && !any_differ; ++seed)
    any_differ = lossy_run(0.4, seed, 50) != a;
  EXPECT_TRUE(any_differ);
}

// Conservation under arbitrary chaos schedules: whatever a random fault
// plan does — drops, partitions, duplication, jitter — after a full drain
//   total + duplicated == delivered + dropped + undeliverable
// and every chaos schedule replays identically for its seed.
TEST(Network, AccountingIdentityHoldsUnderRandomChaosSchedules) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    RandomPlanSpec spec;
    spec.horizon = 100'000;
    spec.ops = 5;
    spec.max_node = 4;  // nodes 0..4, node 4 left unattached
    const FaultPlan plan = random_plan(seed, spec);

    const auto run_once = [&plan] {
      Scheduler sched;
      Network net{sched, 10};
      net.set_loss_rate(0.1, plan.seed);  // uniform loss on top of chaos
      for (NodeId n = 0; n < 4; ++n)
        net.attach(n, [](NodeId, const Network::Payload&) {});
      Chaos chaos{sched, net, plan};
      chaos.arm();
      for (int i = 0; i < 400; ++i) {
        const Time at = static_cast<Time>(i) * 250;
        sched.schedule_at(at, [&net, i] {
          net.send(static_cast<NodeId>(i % 4), static_cast<NodeId>((i + 1) % 5),
                   Network::Payload(std::vector<std::byte>(3)));
        });
      }
      sched.run();
      EXPECT_EQ(net.total_messages() + net.duplicated(),
                net.delivered() + net.dropped() + net.undeliverable())
          << "conservation violated for " << plan.encode();
      return std::tuple{net.delivered(), net.dropped(), net.undeliverable(),
                        net.duplicated()};
    };
    EXPECT_EQ(run_once(), run_once())
        << "chaos schedule not deterministic: " << plan.encode();
  }
}

}  // namespace
}  // namespace cake::sim
