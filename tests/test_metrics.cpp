// Unit tests for the §5.1 metrics: LC, RLC, MR and per-stage aggregation.
#include "cake/metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cake/workload/generators.hpp"

namespace cake::metrics {
namespace {

TEST(NodeLoad, LcIsEventsTimesFilters) {
  NodeLoad load{.id = 1, .stage = 1, .events_received = 100,
                .events_matched = 50, .filters = 7};
  EXPECT_DOUBLE_EQ(load.lc(), 700.0);
}

TEST(NodeLoad, RlcNormalizesAgainstGlobalWork) {
  NodeLoad load{.id = 1, .stage = 1, .events_received = 100,
                .events_matched = 50, .filters = 7};
  EXPECT_DOUBLE_EQ(load.rlc(1000, 70), 700.0 / 70'000.0);
  EXPECT_DOUBLE_EQ(load.rlc(0, 70), 0.0);  // degenerate denominators
  EXPECT_DOUBLE_EQ(load.rlc(1000, 0), 0.0);
}

TEST(NodeLoad, CentralizedServerRlcIsOne) {
  // A server holding all N subscriptions and seeing all E events.
  NodeLoad server{.id = 0, .stage = 1, .events_received = 500,
                  .events_matched = 100, .filters = 42};
  EXPECT_DOUBLE_EQ(server.rlc(500, 42), 1.0);
}

TEST(NodeLoad, MatchingRate) {
  NodeLoad load{.id = 1, .stage = 0, .events_received = 200,
                .events_matched = 174, .filters = 1};
  EXPECT_DOUBLE_EQ(load.mr(), 0.87);
  NodeLoad idle{.id = 2, .stage = 0, .events_received = 0, .events_matched = 0,
                .filters = 1};
  EXPECT_DOUBLE_EQ(idle.mr(), 0.0);
}

TEST(Summaries, GroupsByStageAndAverages) {
  std::vector<NodeLoad> loads{
      {.id = 1, .stage = 0, .events_received = 10, .events_matched = 10, .filters = 1},
      {.id = 2, .stage = 0, .events_received = 20, .events_matched = 10, .filters = 1},
      {.id = 3, .stage = 1, .events_received = 100, .events_matched = 50, .filters = 4},
  };
  const auto summaries = summarize_by_stage(loads, 100, 10);
  ASSERT_EQ(summaries.size(), 2u);
  EXPECT_EQ(summaries[0].stage, 0u);
  EXPECT_EQ(summaries[0].nodes, 2u);
  EXPECT_DOUBLE_EQ(summaries[0].node_avg_mr, 0.75);  // (1.0 + 0.5) / 2
  EXPECT_DOUBLE_EQ(summaries[0].node_avg_lc, 15.0);
  EXPECT_DOUBLE_EQ(summaries[0].node_avg_rlc, 15.0 / 1000.0);
  EXPECT_DOUBLE_EQ(summaries[0].total_node_rlc, 30.0 / 1000.0);
  EXPECT_EQ(summaries[1].stage, 1u);
  EXPECT_DOUBLE_EQ(summaries[1].node_avg_rlc, 400.0 / 1000.0);
  EXPECT_DOUBLE_EQ(global_rlc(summaries), 30.0 / 1000.0 + 400.0 / 1000.0);
}

TEST(Summaries, EmptyInput) {
  EXPECT_TRUE(summarize_by_stage({}, 10, 10).empty());
  EXPECT_DOUBLE_EQ(global_rlc({}), 0.0);
}

TEST(Tables, RlcTableHasPaperColumns) {
  std::vector<NodeLoad> loads{
      {.id = 1, .stage = 0, .events_received = 10, .events_matched = 10, .filters = 1}};
  const auto table = rlc_table(summarize_by_stage(loads, 100, 10));
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("Node avg. of RLC"), std::string::npos);
  EXPECT_NE(os.str().find("Total node avg. of RLC"), std::string::npos);
}

TEST(Tables, StageTableRenders) {
  std::vector<NodeLoad> loads{
      {.id = 1, .stage = 2, .events_received = 10, .events_matched = 5, .filters = 3}};
  const auto table = stage_table(summarize_by_stage(loads, 10, 3));
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("Avg MR"), std::string::npos);
  EXPECT_EQ(table.rows(), 1u);
}

TEST(Collection, CollectsFromLiveOverlay) {
  workload::ensure_types_registered();
  routing::OverlayConfig config;
  config.stage_counts = {1, 2, 4};
  routing::Overlay overlay{config};
  auto& pub = overlay.add_publisher();
  pub.advertise(workload::BiblioGenerator::schema());
  overlay.run();

  workload::BiblioGenerator gen{{}, 5};
  for (int i = 0; i < 10; ++i) {
    auto& sub = overlay.add_subscriber();
    sub.subscribe(gen.next_subscription(), {});
    overlay.run();
  }
  for (int e = 0; e < 200; ++e) pub.publish(gen.next_event());
  overlay.run();

  const auto brokers = broker_loads(overlay);
  EXPECT_EQ(brokers.size(), 7u);
  const auto subs = subscriber_loads(overlay);
  EXPECT_EQ(subs.size(), 10u);
  for (const auto& s : subs) {
    EXPECT_EQ(s.stage, 0u);
    EXPECT_EQ(s.filters, 1u);
    EXPECT_LE(s.events_matched, s.events_received);
  }

  // Root saw all 200 events; its RLC must sit well below the centralized
  // server's 1 because it holds only weakened filters.
  auto all = brokers;
  all.insert(all.end(), subs.begin(), subs.end());
  const auto summaries = summarize_by_stage(all, 200, 10);
  ASSERT_EQ(summaries.size(), 4u);  // stages 0..3
  const auto& root_row = summaries.back();
  EXPECT_EQ(root_row.nodes, 1u);
  EXPECT_EQ(root_row.events_received, 200u);
  EXPECT_LT(root_row.node_avg_rlc, 1.0);
}

TEST(ShardMetrics, ImbalanceIsMaxOverMean) {
  std::vector<index::ShardStats> shards{
      {.shard = 0, .matches = 300, .hits = 30, .filters = 2},
      {.shard = 1, .matches = 100, .hits = 10, .filters = 1},
      {.shard = 2, .matches = 0, .hits = 0, .filters = 0},
      {.shard = 3, .matches = 0, .hits = 0, .filters = 0},
  };
  // mean = 100, max = 300
  EXPECT_DOUBLE_EQ(shard_imbalance(shards), 3.0);
  EXPECT_DOUBLE_EQ(shard_imbalance({}), 0.0);
  EXPECT_DOUBLE_EQ(
      shard_imbalance({{.shard = 0, .matches = 0, .hits = 0, .filters = 5}}),
      0.0);  // no traffic yet
}

TEST(ShardMetrics, PerfectlyEvenTrafficScoresOne) {
  std::vector<index::ShardStats> shards;
  for (std::size_t i = 0; i < 8; ++i)
    shards.push_back({.shard = i, .matches = 50, .hits = 5, .filters = 1});
  EXPECT_DOUBLE_EQ(shard_imbalance(shards), 1.0);
}

TEST(ShardMetrics, TableReportsLiveCounters) {
  workload::ensure_types_registered();
  index::ShardedIndex sharded{index::Engine::Counting,
                              reflect::TypeRegistry::global(), 4};
  sharded.add(filter::FilterBuilder{"Stock"}.build());
  std::vector<index::FilterId> out;
  for (int i = 0; i < 10; ++i)
    sharded.match(event::image_of(workload::Stock{"S", 1.0, i}), out);

  const auto stats = sharded.shard_stats();
  ASSERT_EQ(stats.size(), 4u);
  std::uint64_t matches = 0, hits = 0;
  std::size_t filters = 0;
  for (const auto& s : stats) {
    matches += s.matches;
    hits += s.hits;
    filters += s.filters;
  }
  EXPECT_EQ(matches, 10u);  // one shard consulted per match call
  EXPECT_EQ(hits, 10u);     // the filter matched every event
  EXPECT_EQ(filters, 1u);   // exact-type filter lives in exactly one shard

  std::ostringstream os;
  shard_table(stats).print(os);
  const std::string rendered = os.str();
  EXPECT_NE(rendered.find("Shard"), std::string::npos);
  EXPECT_NE(rendered.find("Hit rate"), std::string::npos);
  EXPECT_GT(shard_imbalance(stats), 0.0);
}

}  // namespace
}  // namespace cake::metrics
