// Unit tests for the §2.1 baseline architectures.
#include "cake/baseline/baseline.hpp"

#include <gtest/gtest.h>

#include "cake/routing/overlay.hpp"
#include "cake/workload/generators.hpp"

namespace cake::baseline {
namespace {

using event::EventImage;
using filter::FilterBuilder;
using filter::Op;
using value::Value;

EventImage pub_event(int year, const std::string& author) {
  return EventImage{
      "Publication",
      {{"year", Value{year}}, {"author", Value{author}}}};
}

TEST(Centralized, DeliversToMatchingSubscribersOnly) {
  workload::ensure_types_registered();
  CentralizedServer server;
  std::vector<std::pair<SubscriberId, std::string>> deliveries;
  server.set_delivery_handler([&](SubscriberId s, const EventImage& e) {
    deliveries.emplace_back(s, e.find("author")->as_string());
  });
  server.subscribe(FilterBuilder{"Publication"}
                       .where("author", Op::Eq, Value{"Eugster"})
                       .build(),
                   1);
  server.subscribe(FilterBuilder{"Publication"}
                       .where("year", Op::Eq, Value{2002})
                       .build(),
                   2);
  server.publish(pub_event(2002, "Eugster"));  // both
  server.publish(pub_event(1999, "Lamport"));  // neither
  server.publish(pub_event(2002, "Felber"));   // only 2

  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(server.stats().events_received, 3u);
  EXPECT_EQ(server.stats().events_matched, 2u);
  EXPECT_EQ(server.stats().deliveries, 3u);
  EXPECT_EQ(server.stats().filters, 2u);
}

TEST(Centralized, LoadComplexityIsEventsTimesFilters) {
  CentralizedServer server;
  for (int i = 0; i < 10; ++i)
    server.subscribe(FilterBuilder{"Publication"}
                         .where("year", Op::Eq, Value{1990 + i})
                         .build(),
                     static_cast<SubscriberId>(i));
  for (int e = 0; e < 7; ++e) server.publish(pub_event(2002, "X"));
  EXPECT_EQ(server.stats().load_complexity, 70u);
  // By definition the centralized server's RLC is 1.
  const double rlc = static_cast<double>(server.stats().load_complexity) /
                     (7.0 * 10.0);
  EXPECT_DOUBLE_EQ(rlc, 1.0);
}

TEST(Centralized, WorksWithCountingEngine) {
  CentralizedServer server{reflect::TypeRegistry::global(),
                           index::Engine::Counting};
  int hits = 0;
  server.set_delivery_handler([&](SubscriberId, const EventImage&) { ++hits; });
  server.subscribe(FilterBuilder{"Publication"}
                       .where("author", Op::Eq, Value{"Eugster"})
                       .build(),
                   0);
  server.publish(pub_event(2002, "Eugster"));
  server.publish(pub_event(2002, "Other"));
  EXPECT_EQ(hits, 1);
}

TEST(Broadcast, EverySubscriberReceivesEveryEvent) {
  BroadcastSystem system;
  const SubscriberId a = system.add_subscriber();
  const SubscriberId b = system.add_subscriber();
  system.subscribe(FilterBuilder{"Publication"}
                       .where("author", Op::Eq, Value{"Eugster"})
                       .build(),
                   a);
  system.subscribe(FilterBuilder{"Publication"}
                       .where("year", Op::Eq, Value{1999})
                       .build(),
                   b);
  system.publish(pub_event(2002, "Eugster"));
  system.publish(pub_event(1999, "Lamport"));

  EXPECT_EQ(system.stats().events_published, 2u);
  EXPECT_EQ(system.stats().messages_sent, 4u);  // flooding: 2 events × 2 subs
  EXPECT_EQ(system.subscriber_stats(a).events_received, 2u);
  EXPECT_EQ(system.subscriber_stats(a).events_delivered, 1u);
  EXPECT_EQ(system.subscriber_stats(b).events_received, 2u);
  EXPECT_EQ(system.subscriber_stats(b).events_delivered, 1u);
}

TEST(Broadcast, LocalLoadGrowsWithOwnFiltersOnly) {
  BroadcastSystem system;
  const SubscriberId light = system.add_subscriber();
  const SubscriberId heavy = system.add_subscriber();
  system.subscribe(FilterBuilder{"Publication"}.build(), light);
  for (int i = 0; i < 10; ++i)
    system.subscribe(FilterBuilder{"Publication"}
                         .where("year", Op::Eq, Value{1990 + i})
                         .build(),
                     heavy);
  system.publish(pub_event(2002, "X"));
  EXPECT_EQ(system.subscriber_stats(light).load_complexity, 1u);
  EXPECT_EQ(system.subscriber_stats(heavy).load_complexity, 10u);
}

TEST(Broadcast, UnknownSubscriberThrows) {
  BroadcastSystem system;
  EXPECT_THROW(system.subscribe(FilterBuilder{}.build(), 5), std::out_of_range);
  EXPECT_THROW((void)system.subscriber_stats(5), std::out_of_range);
}

// Equivalence: all three architectures deliver identical event sets.
TEST(Architectures, AgreeOnDeliveredSets) {
  workload::BiblioGenerator gen{{}, 2024};
  constexpr int kSubs = 20;
  constexpr int kEvents = 300;

  std::vector<filter::ConjunctiveFilter> filters;
  for (int i = 0; i < kSubs; ++i) filters.push_back(gen.next_subscription(i % 3));

  CentralizedServer central;
  BroadcastSystem broadcast;
  std::vector<int> central_counts(kSubs, 0);
  central.set_delivery_handler(
      [&](SubscriberId s, const EventImage&) { ++central_counts[s]; });
  for (int i = 0; i < kSubs; ++i) {
    central.subscribe(filters[i], static_cast<SubscriberId>(i));
    const SubscriberId b = broadcast.add_subscriber();
    broadcast.subscribe(filters[i], b);
  }

  routing::OverlayConfig config;
  config.stage_counts = {1, 3, 9};
  routing::Overlay overlay{config};
  auto& pub = overlay.add_publisher();
  pub.advertise(workload::BiblioGenerator::schema());
  overlay.run();
  std::vector<int> overlay_counts(kSubs, 0);
  for (int i = 0; i < kSubs; ++i) {
    overlay.add_subscriber().subscribe(
        filters[i], [&overlay_counts, i](const EventImage&) { ++overlay_counts[i]; });
  }
  overlay.run();

  for (int e = 0; e < kEvents; ++e) {
    const EventImage image = gen.next_event();
    central.publish(image);
    broadcast.publish(image);
    pub.publish(image);
  }
  overlay.run();

  for (int i = 0; i < kSubs; ++i) {
    EXPECT_EQ(central_counts[i], overlay_counts[i]) << "subscriber " << i;
    EXPECT_EQ(static_cast<std::uint64_t>(central_counts[i]),
              broadcast.subscriber_stats(static_cast<SubscriberId>(i))
                  .events_delivered)
        << "subscriber " << i;
  }
}

}  // namespace
}  // namespace cake::baseline
