// Fault-injection and extension tests: soft-state recovery under message
// loss and crashes (§4.3's claim that TTL renewal "handles process failure
// and network partitions well"), durable subscriptions across
// disconnections (§2.1), composite subscriptions, malformed-frame
// tolerance and the §4.1 schema automation.
#include <gtest/gtest.h>

#include "cake/core/event_system.hpp"
#include "cake/workload/generators.hpp"

namespace cake {
namespace {

using event::EventImage;
using filter::FilterBuilder;
using filter::Op;
using routing::Overlay;
using routing::OverlayConfig;
using value::Value;

EventImage pub_event(int year, const std::string& conf,
                     const std::string& author, const std::string& title) {
  return EventImage{"Publication",
                    {{"year", Value{year}},
                     {"conference", Value{conf}},
                     {"author", Value{author}},
                     {"title", Value{title}}}};
}

OverlayConfig fast_ttl_config() {
  OverlayConfig config;
  config.stage_counts = {1, 2, 4};
  config.broker.ttl = 1'000'000;
  config.broker.renew_interval = 400'000;
  config.broker.reap_interval = 500'000;
  config.subscriber.renew_interval = 400'000;
  return config;
}

struct Fx {
  explicit Fx(OverlayConfig config = fast_ttl_config()) : overlay(config) {
    workload::ensure_types_registered();
    publisher = &overlay.add_publisher();
    publisher->advertise(workload::BiblioGenerator::schema());
    overlay.run();
  }
  Overlay overlay;
  routing::PublisherNode* publisher = nullptr;
};

// ---- crash cleanup ----------------------------------------------------------

TEST(Resilience, CrashedSubscriberStateReapedEverywhere) {
  Fx fx;
  auto& sub = fx.overlay.add_subscriber();
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                {});
  fx.overlay.run();

  // Hard crash: the process vanishes without unsubscribing.
  sub.halt();

  // Soft state: after 3×TTL every table in the overlay is clean again.
  fx.overlay.scheduler().run_until(fx.overlay.scheduler().now() + 20'000'000);
  for (const auto& broker : fx.overlay.brokers())
    EXPECT_TRUE(broker->table().empty()) << "broker " << broker->id();
}

TEST(Resilience, CrashedLeafBrokerStateReapedUpstream) {
  Fx fx;
  auto& sub = fx.overlay.add_subscriber();
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                {});
  fx.overlay.run();
  // Crash the leaf broker hosting the subscription AND the subscriber (so
  // neither renews into the dead path).
  const auto home = sub.accepted_at(1);
  ASSERT_TRUE(home.has_value());
  fx.overlay.network().detach(*home);
  sub.halt();

  fx.overlay.scheduler().run_until(fx.overlay.scheduler().now() + 20'000'000);
  EXPECT_TRUE(fx.overlay.root().table().empty());
  for (routing::Broker* mid : fx.overlay.brokers_at(2))
    EXPECT_TRUE(mid->table().empty());
}

TEST(Resilience, ReparentHandoverCompletesWithNonEmptyFilterTable) {
  // Regression: the handover-done probe once ran right after renew_task had
  // put this tick's renewals on the wire toward the new parent, so with a
  // non-empty filter table the link never looked fully acked at probe time
  // — prev_parent_ never cleared and renewals streamed to the dead old
  // parent forever. The sequence-watermark condition must break the
  // make-before-break within a few renew intervals.
  OverlayConfig config = fast_ttl_config();
  config.stage_counts = {1, 1, 1};  // fixed chain: 0 (root) <- 1 <- 2
  config.link.reliability = link::Reliability::Reliable;
  // Random placement walks the chain to its only leaf; wildcard placement
  // would host this mostly-unconstrained filter at the root, and a root
  // never re-parents.
  config.broker.placement = routing::Placement::Random;
  Fx fx{config};
  auto& sub = fx.overlay.add_subscriber();
  int count = 0;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                [&](const EventImage&) { ++count; });
  fx.overlay.run();

  routing::Broker* leaf = fx.overlay.brokers()[2].get();
  ASSERT_FALSE(leaf->table().empty());  // the leaf hosts the subscription

  // Kill the leaf's parent; heartbeat detection (3 x 200k) plus a few renew
  // intervals (400k) fit comfortably in the 5M window.
  fx.overlay.crash(1);
  fx.overlay.scheduler().run_until(fx.overlay.scheduler().now() + 5'000'000);

  EXPECT_GE(leaf->stats().reparents, 1u);
  EXPECT_EQ(leaf->parent(), 0u);  // re-attached to the grandparent (root)
  EXPECT_FALSE(leaf->handover_pending());

  // The healed path root -> leaf must carry events end-to-end.
  fx.publisher->publish(pub_event(2002, "ICDCS", "Eugster", "A"));
  fx.overlay.run();
  EXPECT_EQ(count, 1);
}

// ---- message loss -----------------------------------------------------------

TEST(Resilience, RenewalLossIsAbsorbedByRedundantRenewals) {
  Fx fx;
  auto& sub = fx.overlay.add_subscriber();
  int count = 0;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                [&](const EventImage&) { ++count; });
  fx.overlay.run();

  // 30% uniform loss: renewals are periodic, so leases survive whp; the
  // Expired/rejoin path catches the rest.
  fx.overlay.network().set_loss_rate(0.3, 99);
  fx.overlay.scheduler().run_until(fx.overlay.scheduler().now() + 30'000'000);
  fx.overlay.network().set_loss_rate(0.0);
  EXPECT_GT(fx.overlay.network().dropped(), 0u);

  // Give one renewal round a lossless window to re-establish anything the
  // loss tore down, then verify end-to-end delivery.
  fx.overlay.scheduler().run_until(fx.overlay.scheduler().now() + 5'000'000);
  fx.publisher->publish(pub_event(2002, "ICDCS", "Eugster", "A"));
  fx.overlay.run();
  EXPECT_EQ(count, 1);
}

TEST(Resilience, ExpiredLeaseTriggersRejoin) {
  Fx fx;
  auto& sub = fx.overlay.add_subscriber();
  int count = 0;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                [&](const EventImage&) { ++count; });
  fx.overlay.run();

  // Simulate a partition long enough for every lease to be reaped: 100%
  // loss for > 3×TTL. The subscriber keeps renewing into the void.
  fx.overlay.network().set_loss_rate(1.0, 7);
  fx.overlay.scheduler().run_until(fx.overlay.scheduler().now() + 10'000'000);
  fx.overlay.network().set_loss_rate(0.0);
  bool any_table_left = false;
  for (const auto& broker : fx.overlay.brokers())
    any_table_left |= !broker->table().empty();
  EXPECT_FALSE(any_table_left);

  // Partition heals: the next renewal gets an Expired back and the
  // subscriber re-runs the join protocol on its own.
  fx.overlay.scheduler().run_until(fx.overlay.scheduler().now() + 3'000'000);
  fx.overlay.run();
  EXPECT_GE(sub.stats().rejoins, 1u);

  fx.publisher->publish(pub_event(2002, "ICDCS", "Eugster", "A"));
  fx.overlay.run();
  EXPECT_EQ(count, 1);
}

TEST(Resilience, StuckJoinRecoversViaRetry) {
  // Subscribe during a total blackout: every protocol message of the join
  // conversation is lost. The periodic retry must complete the join once
  // the network heals — without it the subscription would hang forever.
  Fx fx;
  fx.overlay.network().set_loss_rate(1.0, 5);
  auto& sub = fx.overlay.add_subscriber();
  int count = 0;
  const auto token = sub.subscribe(FilterBuilder{"Publication"}
                                       .where("year", Op::Eq, Value{2002})
                                       .build(),
                                   [&](const EventImage&) { ++count; });
  fx.overlay.run();
  EXPECT_FALSE(sub.accepted_at(token).has_value());

  fx.overlay.network().set_loss_rate(0.0);
  fx.overlay.scheduler().run_until(fx.overlay.scheduler().now() + 2'000'000);
  fx.overlay.run();
  ASSERT_TRUE(sub.accepted_at(token).has_value());

  fx.publisher->publish(pub_event(2002, "ICDCS", "Eugster", "A"));
  fx.overlay.run();
  EXPECT_EQ(count, 1);
}

TEST(Resilience, DuplicateAcceptsNeverDoubleDeliver) {
  // Force the duplicate-join race: drop only the first AcceptedAt so the
  // retry lands at a (possibly different) leaf while the first lease is
  // still installed. Exactly one copy of each event must arrive.
  Fx fx;
  auto& sub = fx.overlay.add_subscriber();
  int count = 0;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                [&](const EventImage&) { ++count; });
  // 60% loss during the join: some conversations need several retries and
  // stale leases from half-finished joins may linger.
  fx.overlay.network().set_loss_rate(0.6, 11);
  fx.overlay.scheduler().run_until(fx.overlay.scheduler().now() + 5'000'000);
  fx.overlay.network().set_loss_rate(0.0);
  fx.overlay.scheduler().run_until(fx.overlay.scheduler().now() + 3'000'000);
  fx.overlay.run();

  for (int i = 0; i < 20; ++i)
    fx.publisher->publish(pub_event(2002, "ICDCS", "Eugster",
                                    "t" + std::to_string(i)));
  fx.overlay.run();
  EXPECT_EQ(count, 20);  // exactly once each, despite the racy joins
}

// ---- durable subscriptions ---------------------------------------------------

TEST(Durable, DetachBuffersAndResumeReplaysInOrder) {
  Fx fx;
  auto& sub = fx.overlay.add_subscriber();
  std::vector<std::string> titles;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                [&](const EventImage& e) {
                  titles.push_back(e.find("title")->as_string());
                },
                {}, /*durable=*/true);
  fx.overlay.run();

  fx.publisher->publish(pub_event(2002, "ICDCS", "Eugster", "before"));
  fx.overlay.run();

  sub.detach();
  fx.overlay.run();
  EXPECT_TRUE(sub.detached());

  for (const char* title : {"while-1", "while-2", "while-3"})
    fx.publisher->publish(pub_event(2002, "ICDCS", "Eugster", title));
  fx.publisher->publish(pub_event(1999, "X", "Y", "uninteresting"));
  fx.overlay.run();
  EXPECT_EQ(titles.size(), 1u);  // nothing delivered while detached

  sub.resume();
  fx.overlay.run();
  EXPECT_EQ(titles, (std::vector<std::string>{"before", "while-1", "while-2",
                                              "while-3"}));

  fx.publisher->publish(pub_event(2002, "ICDCS", "Eugster", "after"));
  fx.overlay.run();
  EXPECT_EQ(titles.back(), "after");

  const auto home = sub.accepted_at(1);
  ASSERT_TRUE(home.has_value());
  for (const auto& broker : fx.overlay.brokers()) {
    if (broker->id() != *home) continue;
    EXPECT_EQ(broker->stats().events_buffered, 3u);
    EXPECT_EQ(broker->stats().events_replayed, 3u);
  }
}

TEST(Durable, DetachedLeaseSurvivesBeyondTtl) {
  Fx fx;
  auto& sub = fx.overlay.add_subscriber();
  std::vector<std::string> titles;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                [&](const EventImage& e) {
                  titles.push_back(e.find("title")->as_string());
                },
                {}, /*durable=*/true);
  fx.overlay.run();
  sub.detach();
  fx.overlay.run();

  // Way past 3×TTL: a non-durable lease would be reaped; the frozen
  // durable lease must survive and keep buffering.
  fx.overlay.scheduler().run_until(fx.overlay.scheduler().now() + 30'000'000);
  fx.publisher->publish(pub_event(2002, "ICDCS", "Eugster", "late"));
  fx.overlay.run();

  sub.resume();
  fx.overlay.run();
  EXPECT_EQ(titles, std::vector<std::string>{"late"});
}

TEST(Durable, NonDurableDetachLosesEvents) {
  Fx fx;
  auto& sub = fx.overlay.add_subscriber();
  int count = 0;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                [&](const EventImage&) { ++count; });
  fx.overlay.run();

  sub.detach();  // no durable lease: brokers ignore the Detach
  fx.overlay.network().detach(sub.id());
  fx.publisher->publish(pub_event(2002, "ICDCS", "Eugster", "lost"));
  fx.overlay.run();

  fx.overlay.network().attach(sub.id(), [](sim::NodeId, const auto&) {});
  sub.resume();
  fx.overlay.run();
  EXPECT_EQ(count, 0);  // the event is simply gone
}

TEST(Durable, BufferOverflowDropsOldest) {
  OverlayConfig config = fast_ttl_config();
  config.broker.durable_buffer_limit = 2;
  Fx fx{config};
  auto& sub = fx.overlay.add_subscriber();
  std::vector<std::string> titles;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                [&](const EventImage& e) {
                  titles.push_back(e.find("title")->as_string());
                },
                {}, /*durable=*/true);
  fx.overlay.run();
  sub.detach();
  fx.overlay.run();

  for (const char* title : {"a", "b", "c", "d"})
    fx.publisher->publish(pub_event(2002, "ICDCS", "Eugster", title));
  fx.overlay.run();

  sub.resume();
  fx.overlay.run();
  EXPECT_EQ(titles, (std::vector<std::string>{"c", "d"}));  // oldest dropped
}

// ---- composite subscriptions -------------------------------------------------

TEST(Composite, HandlerFiresOncePerMatchingEvent) {
  Fx fx;
  auto& sub = fx.overlay.add_subscriber();
  int count = 0;
  // Two overlapping disjuncts: events matching both must deliver once.
  sub.subscribe_any(
      {FilterBuilder{"Publication"}.where("year", Op::Eq, Value{2002}).build(),
       FilterBuilder{"Publication"}
           .where("author", Op::Eq, Value{"Eugster"})
           .build()},
      [&](const EventImage&) { ++count; });
  fx.overlay.run();

  fx.publisher->publish(pub_event(2002, "ICDCS", "Eugster", "both"));
  fx.publisher->publish(pub_event(2002, "ICDCS", "Felber", "year-only"));
  fx.publisher->publish(pub_event(1999, "PODC", "Eugster", "author-only"));
  fx.publisher->publish(pub_event(1999, "PODC", "Lamport", "neither"));
  fx.overlay.run();
  EXPECT_EQ(count, 3);
}

TEST(Composite, IndependentSubscriptionsStillFirePerSubscription) {
  Fx fx;
  auto& sub = fx.overlay.add_subscriber();
  int composite = 0, plain = 0;
  sub.subscribe_any(
      {FilterBuilder{"Publication"}.where("year", Op::Eq, Value{2002}).build(),
       FilterBuilder{"Publication"}.where("year", Op::Eq, Value{2001}).build()},
      [&](const EventImage&) { ++composite; });
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                [&](const EventImage&) { ++plain; });
  fx.overlay.run();
  fx.publisher->publish(pub_event(2002, "ICDCS", "Eugster", "t"));
  fx.overlay.run();
  EXPECT_EQ(composite, 1);
  EXPECT_EQ(plain, 1);
}

TEST(Composite, MembersCanBeUnsubscribedIndividually) {
  Fx fx;
  auto& sub = fx.overlay.add_subscriber();
  int count = 0;
  const auto tokens = sub.subscribe_any(
      {FilterBuilder{"Publication"}.where("year", Op::Eq, Value{2002}).build(),
       FilterBuilder{"Publication"}.where("year", Op::Eq, Value{2001}).build()},
      [&](const EventImage&) { ++count; });
  ASSERT_EQ(tokens.size(), 2u);
  fx.overlay.run();

  sub.unsubscribe(tokens[0]);
  fx.overlay.run();
  fx.publisher->publish(pub_event(2002, "ICDCS", "Eugster", "t"));
  fx.publisher->publish(pub_event(2001, "ICDCS", "Eugster", "t"));
  fx.overlay.run();
  EXPECT_EQ(count, 1);  // only the 2001 disjunct remains
}

// ---- malformed frames ---------------------------------------------------------

TEST(Robustness, BrokersAndSubscribersDropCorruptFrames) {
  Fx fx;
  auto& sub = fx.overlay.add_subscriber();
  int count = 0;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                [&](const EventImage&) { ++count; });
  fx.overlay.run();

  // Garbage straight onto the wire, to a broker and to the subscriber.
  sim::Network::Payload garbage{std::byte{0xde}, std::byte{0xad},
                                std::byte{0xbe}, std::byte{0xef}};
  fx.overlay.network().send(999, fx.overlay.root().id(), garbage);
  fx.overlay.network().send(999, sub.id(), garbage);
  fx.overlay.run();

  EXPECT_EQ(fx.overlay.root().stats().malformed_packets, 1u);
  EXPECT_EQ(sub.stats().malformed_packets, 1u);

  // The system keeps working.
  fx.publisher->publish(pub_event(2002, "ICDCS", "Eugster", "t"));
  fx.overlay.run();
  EXPECT_EQ(count, 1);
}

// ---- schema automation ---------------------------------------------------------

TEST(AutoSchema, DerivedFromSampledEventStream) {
  workload::ensure_types_registered();
  workload::BiblioGenerator gen{{}, 5};
  std::vector<EventImage> sample;
  for (int i = 0; i < 500; ++i) sample.push_back(gen.next_event());

  const auto& type = reflect::TypeRegistry::global().get("Publication");
  const weaken::StageSchema schema = weaken::auto_schema(type, sample, 4);

  // Observed cardinalities: year (6) < conference (15) < author (100) <
  // title (many) — the automation must recover the paper's ordering.
  EXPECT_EQ(schema.attributes_at(3), std::vector<std::string>{"year"});
  EXPECT_EQ(schema.attributes_at(2),
            (std::vector<std::string>{"year", "conference"}));
  EXPECT_EQ(schema.attributes_at(0).size(), 4u);
  EXPECT_EQ(schema.type_name(), "Publication");
}

TEST(AutoSchema, WorksEndToEndInTheOverlay) {
  Fx fx;
  workload::BiblioGenerator gen{{}, 6};
  std::vector<EventImage> sample;
  for (int i = 0; i < 200; ++i) sample.push_back(gen.next_event());
  const auto& type = reflect::TypeRegistry::global().get("Publication");
  fx.publisher->advertise(weaken::auto_schema(type, sample, 4));
  fx.overlay.run();

  std::vector<filter::ConjunctiveFilter> filters;
  std::vector<int> received(10, 0), expected(10, 0);
  for (int i = 0; i < 10; ++i) {
    filters.push_back(gen.next_subscription());
    fx.overlay.add_subscriber().subscribe(
        filters[i], [&received, i](const EventImage&) { ++received[i]; });
    fx.overlay.run();
  }
  for (int e = 0; e < 300; ++e) {
    const EventImage image = gen.next_event();
    for (int i = 0; i < 10; ++i)
      if (filters[i].matches(image, fx.overlay.registry())) ++expected[i];
    fx.publisher->publish(image);
  }
  fx.overlay.run();
  EXPECT_EQ(received, expected);
}

}  // namespace
}  // namespace cake
