// Unit tests for subscriber/publisher endpoints: the join handshake,
// perfect end-to-end filtering, stateful closure predicates, renewal and
// unsubscription.
#include "cake/routing/endpoints.hpp"

#include <gtest/gtest.h>

#include "cake/routing/overlay.hpp"
#include "cake/workload/generators.hpp"

namespace cake::routing {
namespace {

using event::EventImage;
using filter::FilterBuilder;
using filter::Op;
using value::Value;

class EndpointsTest : public ::testing::Test {
protected:
  EndpointsTest() {
    workload::ensure_types_registered();
    OverlayConfig config;
    config.stage_counts = {1, 2, 4};
    overlay_ = std::make_unique<Overlay>(config);
    publisher_ = &overlay_->add_publisher();
    publisher_->advertise(workload::BiblioGenerator::schema());
    overlay_->run();
  }

  EventImage pub_event(int year, const std::string& conf,
                       const std::string& author, const std::string& title) {
    return EventImage{"Publication",
                      {{"year", Value{year}},
                       {"conference", Value{conf}},
                       {"author", Value{author}},
                       {"title", Value{title}}}};
  }

  std::unique_ptr<Overlay> overlay_;
  PublisherNode* publisher_ = nullptr;
};

TEST_F(EndpointsTest, JoinHandshakeLandsOnStageOneBroker) {
  auto& sub = overlay_->add_subscriber();
  const std::uint64_t token = sub.subscribe(
      FilterBuilder{"Publication"}
          .where("year", Op::Eq, Value{2002})
          .where("conference", Op::Eq, Value{"ICDCS"})
          .where("author", Op::Eq, Value{"Eugster"})
          .where("title", Op::Eq, Value{"Cake"})
          .build(),
      {});
  overlay_->run();
  const auto parent = sub.accepted_at(token);
  ASSERT_TRUE(parent.has_value());
  bool is_stage1 = false;
  for (Broker* leaf : overlay_->brokers_at(1)) is_stage1 |= (leaf->id() == *parent);
  EXPECT_TRUE(is_stage1);
  // Root → stage-2 → stage-1 means exactly two redirects.
  EXPECT_EQ(sub.stats().join_redirects, 2u);
}

TEST_F(EndpointsTest, ExactFilterAppliedEndToEnd) {
  auto& sub = overlay_->add_subscriber();
  std::vector<EventImage> got;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .where("conference", Op::Eq, Value{"ICDCS"})
                    .where("author", Op::Eq, Value{"Eugster"})
                    .where("title", Op::Eq, Value{"Cake"})
                    .build(),
                [&](const EventImage& e) { got.push_back(e); });
  overlay_->run();

  publisher_->publish(pub_event(2002, "ICDCS", "Eugster", "Cake"));
  publisher_->publish(pub_event(2002, "ICDCS", "Eugster", "Other"));
  publisher_->publish(pub_event(1999, "SOSP", "Lamport", "Paxos"));
  overlay_->run();

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(*got[0].find("title"), Value{"Cake"});
  // The event with the wrong title reached the subscriber (stage-1 filters
  // ignore titles) but was rejected by the exact filter: that is the
  // perfect end-to-end stage.
  EXPECT_EQ(sub.stats().events_received, 2u);
  EXPECT_EQ(sub.stats().events_delivered, 1u);
}

TEST_F(EndpointsTest, StatefulClosurePredicateRunsOnlyAtTheEdge) {
  // The paper's BuyFilter: match when the price drops below 95% of the
  // previous matching price, under a hard maximum.
  auto& sub = overlay_->add_subscriber();
  publisher_->advertise(workload::StockGenerator::schema());
  overlay_->run();

  std::vector<double> bought;
  double last = 1e9;
  sub.subscribe(
      FilterBuilder{"Stock"}
          .where("symbol", Op::Eq, Value{"Foo"})
          .where("price", Op::Lt, Value{10.0})
          .build(),
      [&](const EventImage& e) { bought.push_back(*e.find("price")->as_number()); },
      [&last](const EventImage& e) {
        const double price = *e.find("price")->as_number();
        const bool hit = price <= last * 0.95;
        last = price;
        return hit;
      });
  overlay_->run();

  auto quote = [&](double price) {
    publisher_->publish(event::image_of(workload::Stock{"Foo", price, 100}));
    overlay_->run();
  };
  quote(9.0);   // 9.0 <= 1e9*0.95 → buy; last=9.0
  quote(8.9);   // 8.9 > 9.0*0.95=8.55 → no; last=8.9
  quote(8.0);   // 8.0 <= 8.9*0.95=8.455 → buy; last=8.0
  quote(12.0);  // above max: never reaches the closure
  EXPECT_EQ(bought, (std::vector<double>{9.0, 8.0}));
}

TEST_F(EndpointsTest, TwoSubscriptionsOnOneProcess) {
  auto& sub = overlay_->add_subscriber();
  int eugster = 0, lamport = 0;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("author", Op::Eq, Value{"Eugster"})
                    .build(),
                [&](const EventImage&) { ++eugster; });
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("author", Op::Eq, Value{"Lamport"})
                    .build(),
                [&](const EventImage&) { ++lamport; });
  overlay_->run();
  EXPECT_EQ(sub.subscriptions(), 2u);

  publisher_->publish(pub_event(2002, "ICDCS", "Eugster", "A"));
  publisher_->publish(pub_event(1998, "PODC", "Lamport", "B"));
  publisher_->publish(pub_event(1998, "PODC", "Lamport", "C"));
  overlay_->run();
  EXPECT_EQ(eugster, 1);
  EXPECT_EQ(lamport, 2);
}

TEST_F(EndpointsTest, UnsubscribeStopsDelivery) {
  auto& sub = overlay_->add_subscriber();
  int count = 0;
  const auto token = sub.subscribe(FilterBuilder{"Publication"}
                                       .where("year", Op::Eq, Value{2002})
                                       .build(),
                                   [&](const EventImage&) { ++count; });
  overlay_->run();
  publisher_->publish(pub_event(2002, "ICDCS", "Eugster", "A"));
  overlay_->run();
  EXPECT_EQ(count, 1);

  sub.unsubscribe(token);
  overlay_->run();
  publisher_->publish(pub_event(2002, "ICDCS", "Eugster", "B"));
  overlay_->run();
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sub.subscriptions(), 0u);
}

TEST_F(EndpointsTest, RenewalKeepsSubscriptionAliveAcrossTtl) {
  OverlayConfig config;
  config.stage_counts = {1, 2};
  config.broker.ttl = 1'000'000;
  config.broker.renew_interval = 400'000;
  config.broker.reap_interval = 500'000;
  config.subscriber.renew_interval = 400'000;
  Overlay overlay{config};
  auto& pub = overlay.add_publisher();
  pub.advertise(workload::BiblioGenerator::schema());
  auto& sub = overlay.add_subscriber();
  int count = 0;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                [&](const EventImage&) { ++count; });
  overlay.run();

  // Far beyond 3×TTL: background renewals must keep the path alive.
  overlay.scheduler().run_until(overlay.scheduler().now() + 20'000'000);
  pub.publish(pub_event(2002, "ICDCS", "Eugster", "A"));
  overlay.run();
  EXPECT_EQ(count, 1);
}

TEST_F(EndpointsTest, WithoutRenewalSubscriptionExpires) {
  OverlayConfig config;
  config.stage_counts = {1, 2};
  config.broker.ttl = 1'000'000;
  config.broker.renew_interval = 400'000;
  config.broker.reap_interval = 500'000;
  config.subscriber.auto_renew = false;  // subscriber dies silently
  Overlay overlay{config};
  auto& pub = overlay.add_publisher();
  pub.advertise(workload::BiblioGenerator::schema());
  auto& sub = overlay.add_subscriber();
  int count = 0;
  sub.subscribe(FilterBuilder{"Publication"}
                    .where("year", Op::Eq, Value{2002})
                    .build(),
                [&](const EventImage&) { ++count; });
  overlay.run();

  overlay.scheduler().run_until(overlay.scheduler().now() + 20'000'000);
  pub.publish(pub_event(2002, "ICDCS", "Eugster", "A"));
  overlay.run();
  // The soft state timed out end-to-end: no delivery, empty leaf tables.
  EXPECT_EQ(count, 0);
  for (Broker* leaf : overlay.brokers_at(1)) EXPECT_TRUE(leaf->table().empty());
}

TEST_F(EndpointsTest, PublisherCountsEvents) {
  EXPECT_EQ(publisher_->stats().events_published, 0u);
  publisher_->publish(pub_event(2002, "ICDCS", "Eugster", "A"));
  publisher_->publish(pub_event(2002, "ICDCS", "Eugster", "B"));
  EXPECT_EQ(publisher_->stats().events_published, 2u);
}

TEST_F(EndpointsTest, TypedPublishExtractsImageViaReflection) {
  auto& sub = overlay_->add_subscriber();
  publisher_->advertise(workload::StockGenerator::schema());
  overlay_->run();
  std::vector<std::string> symbols;
  sub.subscribe(FilterBuilder{"Stock"}
                    .where("price", Op::Lt, Value{50.0})
                    .build(),
                [&](const EventImage& e) {
                  symbols.push_back(e.find("symbol")->as_string());
                });
  overlay_->run();
  publisher_->publish(workload::Stock{"AAA", 40.0, 10});  // typed object
  publisher_->publish(workload::Stock{"BBB", 60.0, 10});
  overlay_->run();
  EXPECT_EQ(symbols, std::vector<std::string>{"AAA"});
}

}  // namespace
}  // namespace cake::routing
