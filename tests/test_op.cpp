// Unit + parameterized tests for constraint operators.
#include "cake/filter/op.hpp"

#include <gtest/gtest.h>

namespace cake::filter {
namespace {

using value::Value;

TEST(Op, ToStringSymbols) {
  EXPECT_EQ(to_string(Op::Eq), "=");
  EXPECT_EQ(to_string(Op::Ne), "!=");
  EXPECT_EQ(to_string(Op::Lt), "<");
  EXPECT_EQ(to_string(Op::Le), "<=");
  EXPECT_EQ(to_string(Op::Gt), ">");
  EXPECT_EQ(to_string(Op::Ge), ">=");
  EXPECT_EQ(to_string(Op::Prefix), "prefix");
  EXPECT_EQ(to_string(Op::Exists), "exists");
  EXPECT_EQ(to_string(Op::Any), "ALL");
}

struct ApplyCase {
  Op op;
  Value event_value;
  Value operand;
  bool expected;
};

class ApplyTable : public ::testing::TestWithParam<ApplyCase> {};

TEST_P(ApplyTable, Applies) {
  const ApplyCase& c = GetParam();
  EXPECT_EQ(applies(c.op, c.event_value, c.operand), c.expected)
      << to_string(c.op) << " event=" << c.event_value.to_string()
      << " operand=" << c.operand.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Equality, ApplyTable,
    ::testing::Values(ApplyCase{Op::Eq, Value{"Foo"}, Value{"Foo"}, true},
                      ApplyCase{Op::Eq, Value{"Foo"}, Value{"Bar"}, false},
                      ApplyCase{Op::Eq, Value{10}, Value{10.0}, true},
                      ApplyCase{Op::Eq, Value{10}, Value{11}, false},
                      ApplyCase{Op::Eq, Value{true}, Value{true}, true},
                      ApplyCase{Op::Eq, Value{"1"}, Value{1}, false},
                      ApplyCase{Op::Ne, Value{"Foo"}, Value{"Bar"}, true},
                      ApplyCase{Op::Ne, Value{5}, Value{5.0}, false},
                      ApplyCase{Op::Ne, Value{"1"}, Value{1}, true}));

INSTANTIATE_TEST_SUITE_P(
    Ordering, ApplyTable,
    ::testing::Values(ApplyCase{Op::Lt, Value{9.0}, Value{10.0}, true},
                      ApplyCase{Op::Lt, Value{10.0}, Value{10.0}, false},
                      ApplyCase{Op::Lt, Value{9}, Value{10.0}, true},
                      ApplyCase{Op::Le, Value{10.0}, Value{10.0}, true},
                      ApplyCase{Op::Le, Value{10.5}, Value{10.0}, false},
                      ApplyCase{Op::Gt, Value{11}, Value{10}, true},
                      ApplyCase{Op::Gt, Value{10}, Value{10}, false},
                      ApplyCase{Op::Ge, Value{10}, Value{10}, true},
                      ApplyCase{Op::Ge, Value{9}, Value{10}, false},
                      ApplyCase{Op::Lt, Value{"abc"}, Value{"abd"}, true},
                      ApplyCase{Op::Gt, Value{"b"}, Value{"a"}, true},
                      // incomparable kinds evaluate to false, never throw
                      ApplyCase{Op::Lt, Value{"5"}, Value{10}, false},
                      ApplyCase{Op::Ge, Value{true}, Value{1}, false},
                      ApplyCase{Op::Lt, Value{}, Value{1}, false}));

INSTANTIATE_TEST_SUITE_P(
    PrefixExistsAny, ApplyTable,
    ::testing::Values(ApplyCase{Op::Prefix, Value{"foobar"}, Value{"foo"}, true},
                      ApplyCase{Op::Prefix, Value{"foo"}, Value{"foobar"}, false},
                      ApplyCase{Op::Prefix, Value{"foo"}, Value{"foo"}, true},
                      ApplyCase{Op::Prefix, Value{"foo"}, Value{""}, true},
                      ApplyCase{Op::Prefix, Value{12}, Value{"1"}, false},
                      ApplyCase{Op::Prefix, Value{"1"}, Value{1}, false},
                      ApplyCase{Op::Exists, Value{"x"}, Value{}, true},
                      ApplyCase{Op::Exists, Value{0}, Value{"ignored"}, true},
                      ApplyCase{Op::Any, Value{"x"}, Value{}, true},
                      ApplyCase{Op::Any, Value{}, Value{}, true}));

}  // namespace
}  // namespace cake::filter
