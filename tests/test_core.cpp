// Unit tests for the public EventSystem façade: typed publish/subscribe,
// closure filters, subtype subscriptions — the paper's §3.4 programming
// model end to end.
#include "cake/core/event_system.hpp"

#include <gtest/gtest.h>

#include "cake/workload/generators.hpp"

namespace cake::core {
namespace {

using filter::FilterBuilder;
using filter::Op;
using value::Value;
using workload::Auction;
using workload::CarAuction;
using workload::Stock;
using workload::VehicleAuction;

EventSystem::Config small_config() {
  EventSystem::Config config;
  config.overlay.stage_counts = {1, 2, 4};
  return config;
}

class CoreTest : public ::testing::Test {
protected:
  CoreTest() : sys_(small_config()) {
    workload::ensure_types_registered();
    sys_.advertise<Stock>();
    sys_.advertise<Auction>();
    sys_.advertise<VehicleAuction>();
    sys_.advertise<CarAuction>();
  }
  EventSystem sys_;
};

TEST_F(CoreTest, TypedSubscribeReceivesTypedObjects) {
  auto& sub = sys_.make_subscriber();
  std::vector<std::string> symbols;
  sub.subscribe<Stock>(FilterBuilder{"Stock"}
                           .where("symbol", Op::Eq, Value{"Foo"})
                           .where("price", Op::Lt, Value{10.0})
                           .build(),
                       [&](const Stock& s) { symbols.push_back(s.symbol()); });
  sys_.run();
  sys_.publish(Stock{"Foo", 9.0, 100});
  sys_.publish(Stock{"Foo", 11.0, 100});
  sys_.publish(Stock{"Bar", 9.0, 100});
  sys_.run();
  EXPECT_EQ(symbols, std::vector<std::string>{"Foo"});
}

TEST_F(CoreTest, PaperBuyFilterClosure) {
  // §3.4 Filter Interpretation: BuyFilter("Foo", 10.0, 0.95) — cheap Foo
  // quotes whose price dropped below 95% of the previous matching quote.
  auto& sub = sys_.make_subscriber();
  std::vector<double> bought;
  double last = 0.0;
  sub.subscribe<Stock>(
      FilterBuilder{"Stock"}
          .where("symbol", Op::Eq, Value{"Foo"})
          .where("price", Op::Lt, Value{10.0})
          .build(),
      [&](const Stock& s) { bought.push_back(s.price()); },
      [&last](const Stock& s) {
        const double price = s.price();
        const bool match = last == 0.0 || price <= last * 0.95;
        last = price;
        return match;
      });
  sys_.run();
  for (double price : {9.0, 8.9, 8.0, 12.0, 7.0}) {
    sys_.publish(Stock{"Foo", price, 100});
    sys_.run();
  }
  // 9.0 first match; 8.9 > 8.55 no; 8.0 <= 8.455 yes; 12 filtered by price;
  // 7.0 <= 7.6 yes.
  EXPECT_EQ(bought, (std::vector<double>{9.0, 8.0, 7.0}));
}

TEST_F(CoreTest, DefaultTypeConstraintIncludesSubtypes) {
  auto& sub = sys_.make_subscriber();
  int count = 0;
  // No explicit type in the filter: subscribe<Auction> adds Auction+subtypes.
  sub.subscribe<Auction>(FilterBuilder{}.build(),
                         [&](const Auction&) { ++count; });
  sys_.run();
  sys_.publish(Auction{"Estate", 100.0});
  sys_.publish(VehicleAuction{200.0, "Van", 4});
  sys_.publish(CarAuction{300.0, 4, 5});
  sys_.publish(Stock{"Foo", 1.0, 1});
  sys_.run();
  EXPECT_EQ(count, 3);
}

TEST_F(CoreTest, SubtypeHandlerSeesMostDerivedState) {
  auto& sub = sys_.make_subscriber();
  std::vector<std::string> kinds;
  sub.subscribe<VehicleAuction>(FilterBuilder{}.build(),
                                [&](const VehicleAuction& v) {
                                  kinds.push_back(v.kind());
                                });
  sys_.run();
  sys_.publish(VehicleAuction{200.0, "Van", 4});
  sys_.publish(CarAuction{300.0, 4, 5});  // Car is-a Vehicle
  sys_.run();
  EXPECT_EQ(kinds, (std::vector<std::string>{"Van", "Car"}));
}

TEST_F(CoreTest, TypedCompositeSubscription) {
  auto& sub = sys_.make_subscriber();
  int count = 0;
  sub.subscribe_any<Stock>(
      {FilterBuilder{"Stock"}.where("symbol", Op::Eq, Value{"Foo"}).build(),
       FilterBuilder{"Stock"}.where("price", Op::Lt, Value{5.0}).build()},
      [&](const Stock&) { ++count; });
  sys_.run();
  sys_.publish(Stock{"Foo", 3.0, 1});   // both disjuncts: once
  sys_.publish(Stock{"Foo", 50.0, 1});  // symbol only
  sys_.publish(Stock{"Bar", 3.0, 1});   // price only
  sys_.publish(Stock{"Bar", 50.0, 1});  // neither
  sys_.run();
  EXPECT_EQ(count, 3);
}

TEST_F(CoreTest, DurableSubscriptionThroughFacade) {
  auto& sub = sys_.make_subscriber();
  std::vector<double> prices;
  sub.subscribe<Stock>(
      FilterBuilder{"Stock"}.where("symbol", Op::Eq, Value{"Foo"}).build(),
      [&](const Stock& s) { prices.push_back(s.price()); }, {},
      /*durable=*/true);
  sys_.run();
  sub.detach();
  sys_.run();
  sys_.publish(Stock{"Foo", 7.0, 1});
  sys_.run();
  EXPECT_TRUE(prices.empty());
  sub.resume();
  sys_.run();
  EXPECT_EQ(prices, std::vector<double>{7.0});
}

TEST_F(CoreTest, ImageSubscriptionBypassesTypedDecode) {
  auto& sub = sys_.make_subscriber();
  std::vector<std::string> types;
  sub.subscribe_images(FilterBuilder{"Stock"}.build(),
                       [&](const event::EventImage& e) {
                         types.push_back(std::string{e.type_name()});
                       });
  sys_.run();
  sys_.publish(Stock{"Foo", 1.0, 1});
  sys_.run();
  EXPECT_EQ(types, std::vector<std::string>{"Stock"});
}

TEST_F(CoreTest, UnsubscribeViaFacade) {
  auto& sub = sys_.make_subscriber();
  int count = 0;
  const auto token = sub.subscribe<Stock>(FilterBuilder{"Stock"}.build(),
                                          [&](const Stock&) { ++count; });
  sys_.run();
  sys_.publish(Stock{"Foo", 1.0, 1});
  sys_.run();
  sub.unsubscribe(token);
  sys_.run();
  sys_.publish(Stock{"Foo", 1.0, 1});
  sys_.run();
  EXPECT_EQ(count, 1);
}

TEST_F(CoreTest, SchemaStagesDefaultCoversOverlayDepth) {
  EXPECT_EQ(sys_.schema_stages(), 4u);  // 3 broker stages + subscriber level
  EventSystem::Config config = small_config();
  config.schema_stages = 2;
  EventSystem custom{config};
  EXPECT_EQ(custom.schema_stages(), 2u);
}

TEST_F(CoreTest, RunForAdvancesVirtualTimeOnly) {
  const sim::Time before = sys_.overlay().scheduler().now();
  sys_.run_for(5'000'000);
  EXPECT_EQ(sys_.overlay().scheduler().now(), before + 5'000'000);
}

TEST_F(CoreTest, StatsVisibleThroughFacade) {
  auto& sub = sys_.make_subscriber();
  sub.subscribe<Stock>(
      FilterBuilder{"Stock"}.where("symbol", Op::Eq, Value{"Foo"}).build(),
      [](const Stock&) {});
  sys_.run();
  sys_.publish(Stock{"Foo", 1.0, 1});
  sys_.run();
  EXPECT_EQ(sub.stats().events_delivered, 1u);
}

}  // namespace
}  // namespace cake::core
