// Tests for covering-collapse of upward submissions (§3.4: "we can now
// ignore filter f1 (and its derivative) and keep only g1" on shared
// paths): only the antichain of weakened forms under covering travels to
// the parent, demand re-exposes suppressed forms when the covering form
// goes away, and end-to-end delivery is unaffected.
#include <gtest/gtest.h>

#include "cake/routing/overlay.hpp"
#include "cake/workload/generators.hpp"

namespace cake::routing {
namespace {

using filter::ConjunctiveFilter;
using filter::FilterBuilder;
using filter::Op;
using value::Value;

/// Captures packets delivered to a node id (local copy of the broker-test
/// helper, kept small on purpose).
class Probe {
public:
  Probe(sim::Network& net, sim::NodeId id) {
    net.attach(id, [this](sim::NodeId, const sim::Network::Payload& p) {
      packets_.push_back(decode(p));
    });
  }
  template <class T>
  [[nodiscard]] std::vector<T> of() const {
    std::vector<T> out;
    for (const Packet& p : packets_)
      if (const T* msg = std::get_if<T>(&p)) out.push_back(*msg);
    return out;
  }

private:
  std::vector<Packet> packets_;
};

ConjunctiveFilter price_below(double limit) {
  return FilterBuilder{"Stock"}
      .where("symbol", Op::Eq, Value{"Foo"})
      .where("price", Op::Lt, Value{limit})
      .build();
}

class CollapseTest : public ::testing::Test {
protected:
  static constexpr sim::NodeId kParent = 100;
  static constexpr sim::NodeId kSubA = 200;
  static constexpr sim::NodeId kSubB = 201;

  CollapseTest() { workload::ensure_types_registered(); }

  // A stage-1 broker with covering_collapse on and NO advertised schema:
  // weakening is the identity, so upward forms are the exact filters and
  // covering relations between them are visible.
  void make_broker() {
    BrokerConfig config;
    config.covering_collapse = true;
    broker_ = std::make_unique<Broker>(1, 1, net_, transport_,
                                       reflect::TypeRegistry::global(), config,
                                       util::Rng{3});
    broker_->set_parent(kParent);
    parent_ = std::make_unique<Probe>(net_, kParent);
    subA_ = std::make_unique<Probe>(net_, kSubA);
    subB_ = std::make_unique<Probe>(net_, kSubB);
    broker_->start();
  }

  void send(sim::NodeId from, const Packet& packet) {
    net_.send(from, broker_->id(), encode(packet));
    sched_.run();
  }

  sim::Scheduler sched_;
  runtime::SimTransport transport_{sched_};
  sim::Network net_{sched_};
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<Probe> parent_;
  std::unique_ptr<Probe> subA_;
  std::unique_ptr<Probe> subB_;
};

TEST_F(CollapseTest, CoveredFormIsNeverSubmitted) {
  make_broker();
  // The wide filter arrives first; the narrow one is covered by it.
  send(kSubA, Subscribe{price_below(11.0), kSubA, 1});
  send(kSubB, Subscribe{price_below(10.0), kSubB, 1});

  const auto inserts = parent_->of<ReqInsert>();
  ASSERT_EQ(inserts.size(), 1u);
  EXPECT_EQ(inserts[0].filter, price_below(11.0));
  EXPECT_TRUE(parent_->of<Unsub>().empty());
  EXPECT_EQ(broker_->table().size(), 2u);  // both stored locally
}

TEST_F(CollapseTest, WiderArrivalRetractsTheCoveredSubmission) {
  make_broker();
  send(kSubA, Subscribe{price_below(10.0), kSubA, 1});
  send(kSubB, Subscribe{price_below(11.0), kSubB, 1});  // covers the first

  const auto inserts = parent_->of<ReqInsert>();
  ASSERT_EQ(inserts.size(), 2u);  // 10 first, then the covering 11
  EXPECT_EQ(inserts[1].filter, price_below(11.0));
  const auto unsubs = parent_->of<Unsub>();
  ASSERT_EQ(unsubs.size(), 1u);  // the now-covered 10 was retracted
  EXPECT_EQ(unsubs[0].filter, price_below(10.0));
}

TEST_F(CollapseTest, RemovingTheCoverReExposesSuppressedForms) {
  make_broker();
  send(kSubA, Subscribe{price_below(11.0), kSubA, 1});
  send(kSubB, Subscribe{price_below(10.0), kSubB, 1});  // suppressed

  // The wide subscriber leaves: its form goes, the narrow one must now be
  // submitted or events would be lost.
  send(kSubA, Unsub{price_below(11.0), kSubA});
  const auto inserts = parent_->of<ReqInsert>();
  ASSERT_EQ(inserts.size(), 2u);
  EXPECT_EQ(inserts[1].filter, price_below(10.0));
  const auto unsubs = parent_->of<Unsub>();
  ASSERT_EQ(unsubs.size(), 1u);
  EXPECT_EQ(unsubs[0].filter, price_below(11.0));
}

TEST_F(CollapseTest, ChainCollapsesToWeakestOnly) {
  make_broker();
  send(kSubA, Subscribe{price_below(10.0), kSubA, 1});
  send(kSubA, Subscribe{price_below(12.0), kSubA, 2});
  send(kSubB, Subscribe{price_below(11.0), kSubB, 1});
  send(kSubB, Subscribe{price_below(14.0), kSubB, 2});

  // Whatever the arrival order did, the last word upstream is 14 alone.
  const auto inserts = parent_->of<ReqInsert>();
  ASSERT_FALSE(inserts.empty());
  EXPECT_EQ(inserts.back().filter, price_below(14.0));
  // Every submitted form except 14 was retracted again.
  const auto unsubs = parent_->of<Unsub>();
  std::size_t live = inserts.size();
  for (const auto& i : inserts) {
    for (const auto& u : unsubs) {
      if (u.filter == i.filter) {
        --live;
        break;
      }
    }
  }
  EXPECT_EQ(live, 1u);
}

TEST(CollapseEndToEnd, SafetyHoldsWithCollapseEnabled) {
  workload::ensure_types_registered();
  OverlayConfig config;
  config.stage_counts = {1, 3, 9};
  config.broker.covering_collapse = true;
  Overlay overlay{config};
  auto& pub = overlay.add_publisher();
  // Deliberately NO advertisement: identity weakening maximizes covering
  // relations between submitted forms — the collapse's stress case.
  workload::StockGenerator gen{{}, 77};

  std::vector<filter::ConjunctiveFilter> filters;
  std::vector<int> received(25, 0), expected(25, 0);
  for (int i = 0; i < 25; ++i) {
    filters.push_back(gen.next_subscription());
    overlay.add_subscriber().subscribe(
        filters[i],
        [&received, i](const event::EventImage&) { ++received[i]; });
    overlay.run();
  }
  for (int e = 0; e < 500; ++e) {
    const auto image = event::image_of(gen.next());
    for (int i = 0; i < 25; ++i)
      if (filters[i].matches(image, overlay.registry())) ++expected[i];
    pub.publish(image);
  }
  overlay.run();
  EXPECT_EQ(received, expected);

  // And the collapse actually did something: the root holds fewer filters
  // than the 25 exact subscriptions.
  EXPECT_LT(overlay.root().stats().filters, 25u);
}

}  // namespace
}  // namespace cake::routing
