// Unit tests for the binary wire substrate.
#include "cake/wire/wire.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace cake::wire {
namespace {

using value::Value;

TEST(Wire, U8RoundTrip) {
  Writer w;
  w.u8(0);
  w.u8(127);
  w.u8(255);
  Reader r{w.bytes()};
  EXPECT_EQ(r.u8(), 0);
  EXPECT_EQ(r.u8(), 127);
  EXPECT_EQ(r.u8(), 255);
  EXPECT_TRUE(r.done());
}

TEST(Wire, VarintRoundTripEdges) {
  const std::uint64_t cases[] = {0,
                                 1,
                                 127,
                                 128,
                                 16383,
                                 16384,
                                 (1ULL << 32) - 1,
                                 1ULL << 32,
                                 std::numeric_limits<std::uint64_t>::max()};
  Writer w;
  for (const auto v : cases) w.varint(v);
  Reader r{w.bytes()};
  for (const auto v : cases) EXPECT_EQ(r.varint(), v);
}

TEST(Wire, VarintCompactness) {
  Writer w;
  w.varint(5);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.varint(300);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Wire, ZigzagRoundTripEdges) {
  const std::int64_t cases[] = {0,
                                -1,
                                1,
                                -2,
                                63,
                                -64,
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()};
  Writer w;
  for (const auto v : cases) w.zigzag(v);
  Reader r{w.bytes()};
  for (const auto v : cases) EXPECT_EQ(r.zigzag(), v);
}

TEST(Wire, SmallMagnitudeSignedStaysSmall) {
  Writer w;
  w.zigzag(-1);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Wire, F64RoundTrip) {
  const double cases[] = {0.0, -0.0, 1.5, -123.25, 1e300, -1e-300};
  Writer w;
  for (const auto v : cases) w.f64(v);
  Reader r{w.bytes()};
  for (const auto v : cases) EXPECT_EQ(r.f64(), v);
}

TEST(Wire, StringRoundTrip) {
  Writer w;
  w.string("");
  w.string("hello");
  w.string(std::string(1000, 'x'));
  Reader r{w.bytes()};
  EXPECT_EQ(r.string(), "");
  EXPECT_EQ(r.string(), "hello");
  EXPECT_EQ(r.string(), std::string(1000, 'x'));
}

TEST(Wire, StringWithEmbeddedNul) {
  std::string s = "a";
  s.push_back('\0');
  s += "b";
  Writer w;
  w.string(s);
  Reader r{w.bytes()};
  EXPECT_EQ(r.string(), s);
}

TEST(Wire, ValueRoundTripAllKinds) {
  const Value cases[] = {Value{}, Value{true}, Value{false}, Value{-42},
                         Value{3.75}, Value{"abc"}};
  Writer w;
  for (const auto& v : cases) w.value(v);
  Reader r{w.bytes()};
  for (const auto& v : cases) EXPECT_EQ(r.value(), v);
}

TEST(Wire, TruncatedInputThrows) {
  Writer w;
  w.string("hello");
  auto bytes = w.bytes();
  bytes.pop_back();
  Reader r{bytes};
  EXPECT_THROW((void)r.string(), WireError);
}

TEST(Wire, EmptyReaderThrowsOnAnyRead) {
  Reader r{std::span<const std::byte>{}};
  EXPECT_THROW((void)r.u8(), WireError);
  Reader r2{std::span<const std::byte>{}};
  EXPECT_THROW((void)r2.varint(), WireError);
  Reader r3{std::span<const std::byte>{}};
  EXPECT_THROW((void)r3.f64(), WireError);
}

TEST(Wire, OverlongVarintThrows) {
  Writer w;
  for (int i = 0; i < 11; ++i) w.u8(0x80);
  Reader r{w.bytes()};
  EXPECT_THROW((void)r.varint(), WireError);
}

TEST(Wire, UnknownValueKindThrows) {
  Writer w;
  w.u8(99);
  Reader r{w.bytes()};
  EXPECT_THROW((void)r.value(), WireError);
}

TEST(Wire, Fnv1aKnownVectors) {
  EXPECT_EQ(fnv1a({}), 0xcbf29ce484222325ULL);
  const auto bytes = std::as_bytes(std::span{"a", 1});
  EXPECT_EQ(fnv1a(bytes), 0xaf63dc4c8601ec8cULL);
}

TEST(Wire, FrameRoundTrip) {
  Writer w;
  w.string("payload");
  const auto framed = frame(w.bytes());
  const auto payload = unframe(framed);  // borrowed view into `framed`
  ASSERT_EQ(payload.size(), w.bytes().size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), w.bytes().begin()));
}

TEST(Wire, EmptyPayloadFrames) {
  const auto framed = frame({});
  EXPECT_TRUE(unframe(framed).empty());
}

TEST(Wire, CorruptChecksumDetected) {
  Writer w;
  w.string("data");
  auto framed = frame(w.bytes());
  framed[2] ^= std::byte{0xff};  // flip a payload bit
  EXPECT_THROW((void)unframe(framed), WireError);
}

TEST(Wire, TruncatedFrameDetected) {
  Writer w;
  w.string("data");
  auto framed = frame(w.bytes());
  framed.resize(framed.size() - 3);
  EXPECT_THROW((void)unframe(framed), WireError);
}

TEST(Wire, RawAppendsVerbatim) {
  Writer inner;
  inner.u8(1);
  inner.u8(2);
  Writer outer;
  outer.raw(inner.bytes());
  EXPECT_EQ(outer.bytes(), inner.bytes());
}

}  // namespace
}  // namespace cake::wire
