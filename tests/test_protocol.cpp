// Round-trip tests for every overlay protocol message.
#include "cake/routing/protocol.hpp"

#include <gtest/gtest.h>

#include <set>

#include "cake/util/rng.hpp"
#include "cake/workload/generators.hpp"

namespace cake::routing {
namespace {

using filter::ConjunctiveFilter;
using filter::FilterBuilder;
using filter::Op;
using value::Value;

ConjunctiveFilter sample_filter() {
  return FilterBuilder{"Stock"}
      .where("symbol", Op::Eq, Value{"DEF"})
      .where("price", Op::Lt, Value{10.0})
      .build();
}

template <class T>
T roundtrip(const T& msg) {
  const Packet decoded = decode(encode(Packet{msg}));
  return std::get<T>(decoded);
}

TEST(Protocol, AdvertiseRoundTrip) {
  const auto schema = workload::BiblioGenerator::schema();
  EXPECT_EQ(roundtrip(Advertise{schema}).schema, schema);
}

TEST(Protocol, SubscribeRoundTrip) {
  const Subscribe msg{sample_filter(), 42, 7};
  const Subscribe back = roundtrip(msg);
  EXPECT_EQ(back.filter, msg.filter);
  EXPECT_EQ(back.subscriber, 42u);
  EXPECT_EQ(back.token, 7u);
}

TEST(Protocol, JoinAtRoundTrip) {
  const JoinAt back = roundtrip(JoinAt{9, 123});
  EXPECT_EQ(back.target, 9u);
  EXPECT_EQ(back.token, 123u);
}

TEST(Protocol, AcceptedAtRoundTrip) {
  const AcceptedAt back = roundtrip(AcceptedAt{3, 5, sample_filter()});
  EXPECT_EQ(back.node, 3u);
  EXPECT_EQ(back.token, 5u);
  EXPECT_EQ(back.stored, sample_filter());
}

TEST(Protocol, ReqInsertRoundTrip) {
  const ReqInsert back = roundtrip(ReqInsert{sample_filter(), 11});
  EXPECT_EQ(back.filter, sample_filter());
  EXPECT_EQ(back.child, 11u);
}

TEST(Protocol, RenewRoundTrip) {
  const Renew back = roundtrip(Renew{sample_filter(), 6});
  EXPECT_EQ(back.filter, sample_filter());
  EXPECT_EQ(back.child, 6u);
}

TEST(Protocol, UnsubRoundTrip) {
  const Unsub back = roundtrip(Unsub{sample_filter(), 8});
  EXPECT_EQ(back.filter, sample_filter());
  EXPECT_EQ(back.child, 8u);
}

TEST(Protocol, EventMsgRoundTrip) {
  workload::BiblioGenerator gen{{}, 1};
  const event::EventImage image = gen.next_event();
  EXPECT_EQ(roundtrip(EventMsg{image}).image, image);
}

TEST(Protocol, CorruptFrameThrows) {
  auto bytes = encode(Packet{JoinAt{1, 2}});
  bytes.back() ^= std::byte{0x01};
  EXPECT_THROW((void)decode(bytes), wire::WireError);
}

TEST(Protocol, UnknownTagThrows) {
  wire::Writer w;
  w.u8(250);
  const auto framed = wire::frame(w.bytes());
  EXPECT_THROW((void)decode(framed), wire::WireError);
}

TEST(Protocol, SentinelNodeIdsSurvive) {
  const Subscribe back = roundtrip(Subscribe{sample_filter(), sim::kNoNode, 0});
  EXPECT_EQ(back.subscriber, sim::kNoNode);
}

// ---- decode fuzzing ---------------------------------------------------------
//
// One representative frame per variant; truncation at every byte offset and
// byte flips must raise wire::WireError — never crash, never silently decode
// into a different variant.

static_assert(std::variant_size_v<Packet> == kPacketClasses,
              "new packet variants must join the fuzz corpus below");

std::vector<Packet> fuzz_corpus() {
  workload::BiblioGenerator gen{{}, 2};
  return {Advertise{workload::BiblioGenerator::schema()},
          Subscribe{sample_filter(), 42, 7, true},
          JoinAt{9, 123},
          AcceptedAt{3, 5, sample_filter()},
          ReqInsert{sample_filter(), 11},
          Renew{sample_filter(), 6},
          Unsub{sample_filter(), 8},
          Expired{sample_filter()},
          Detach{4},
          Resume{4},
          EventMsg{gen.next_event(), 77, 0xABCDEFu}};
}

TEST(ProtocolFuzz, TruncationAtEveryOffsetThrows) {
  for (const Packet& packet : fuzz_corpus()) {
    const auto frame = encode(packet);
    for (std::size_t len = 0; len < frame.size(); ++len) {
      const std::vector<std::byte> cut(frame.begin(),
                                       frame.begin() + static_cast<std::ptrdiff_t>(len));
      EXPECT_THROW((void)decode(cut), wire::WireError)
          << "variant " << packet.index() << " truncated to " << len
          << " of " << frame.size() << " bytes";
    }
  }
}

TEST(ProtocolFuzz, SingleByteFlipsNeverMisdecode) {
  for (const Packet& packet : fuzz_corpus()) {
    const auto frame = encode(packet);
    for (std::size_t i = 0; i < frame.size(); ++i) {
      for (const std::byte mask : {std::byte{0x01}, std::byte{0xff}}) {
        auto mutated = frame;
        mutated[i] ^= mask;
        try {
          const Packet back = decode(mutated);
          // A flip the checksum failed to catch may only yield the same
          // variant (possible in principle, never a silent reinterpretation).
          EXPECT_EQ(back.index(), packet.index())
              << "flip at byte " << i << " changed the decoded variant";
        } catch (const wire::WireError&) {
          // The expected outcome.
        }
      }
    }
  }
}

TEST(ProtocolFuzz, RandomMultiByteCorruptionThrowsOrPreservesVariant) {
  util::Rng rng{0xF00DULL};
  for (const Packet& packet : fuzz_corpus()) {
    const auto frame = encode(packet);
    for (int round = 0; round < 200; ++round) {
      auto mutated = frame;
      const std::size_t flips = 1 + rng.below(4);
      for (std::size_t f = 0; f < flips; ++f) {
        const std::size_t at = rng.below(mutated.size());
        mutated[at] ^= static_cast<std::byte>(1 + rng.below(255));
      }
      try {
        const Packet back = decode(mutated);
        EXPECT_EQ(back.index(), packet.index());
      } catch (const wire::WireError&) {
      }
    }
  }
}

// ---- packet classification (chaos per-type drop rules) ---------------------

TEST(Protocol, PacketClassPeeksTheWireTagOfEveryVariant) {
  // Variant order and wire-tag order differ at the tail (EventMsg encodes
  // as tag 7 for compatibility with its position in the original enum);
  // packet_class reports the *wire* tag.
  const std::vector<std::uint8_t> wire_tag_of_variant = {0, 1, 2, 3, 4, 5,
                                                         6, 8, 9, 10, 7};
  const std::vector<Packet> corpus = fuzz_corpus();
  ASSERT_EQ(corpus.size(), wire_tag_of_variant.size());
  for (std::size_t i = 0; i < corpus.size(); ++i)
    EXPECT_EQ(packet_class(encode(corpus[i])), wire_tag_of_variant[i])
        << "variant " << i;
}

TEST(Protocol, PacketClassNamesAreDistinctAndKnown) {
  std::set<std::string_view> names;
  for (std::uint8_t cls = 0; cls < kPacketClasses; ++cls) {
    const std::string_view name = packet_class_name(cls);
    EXPECT_NE(name, "?") << "class " << int{cls};
    names.insert(name);
  }
  EXPECT_EQ(names.size(), kPacketClasses);
  EXPECT_EQ(packet_class_name(kPacketClasses), "?");
  EXPECT_EQ(packet_class_name(0xff), "?");
}

TEST(Protocol, PacketClassIsSafeOnMalformedFrames) {
  EXPECT_EQ(packet_class({}), 0xff);
  const std::vector<std::byte> junk{std::byte{0x80}, std::byte{0x80},
                                    std::byte{0x80}};
  EXPECT_EQ(packet_class(junk), 0xff);  // unterminated varint
  auto frame = encode(Packet{Detach{4}});
  frame.resize(1);  // length byte only, no tag
  EXPECT_EQ(packet_class(frame), 0xff);
}

}  // namespace
}  // namespace cake::routing
