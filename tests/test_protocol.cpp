// Round-trip tests for every overlay protocol message.
#include "cake/routing/protocol.hpp"

#include <gtest/gtest.h>

#include "cake/workload/generators.hpp"

namespace cake::routing {
namespace {

using filter::ConjunctiveFilter;
using filter::FilterBuilder;
using filter::Op;
using value::Value;

ConjunctiveFilter sample_filter() {
  return FilterBuilder{"Stock"}
      .where("symbol", Op::Eq, Value{"DEF"})
      .where("price", Op::Lt, Value{10.0})
      .build();
}

template <class T>
T roundtrip(const T& msg) {
  const Packet decoded = decode(encode(Packet{msg}));
  return std::get<T>(decoded);
}

TEST(Protocol, AdvertiseRoundTrip) {
  const auto schema = workload::BiblioGenerator::schema();
  EXPECT_EQ(roundtrip(Advertise{schema}).schema, schema);
}

TEST(Protocol, SubscribeRoundTrip) {
  const Subscribe msg{sample_filter(), 42, 7};
  const Subscribe back = roundtrip(msg);
  EXPECT_EQ(back.filter, msg.filter);
  EXPECT_EQ(back.subscriber, 42u);
  EXPECT_EQ(back.token, 7u);
}

TEST(Protocol, JoinAtRoundTrip) {
  const JoinAt back = roundtrip(JoinAt{9, 123});
  EXPECT_EQ(back.target, 9u);
  EXPECT_EQ(back.token, 123u);
}

TEST(Protocol, AcceptedAtRoundTrip) {
  const AcceptedAt back = roundtrip(AcceptedAt{3, 5, sample_filter()});
  EXPECT_EQ(back.node, 3u);
  EXPECT_EQ(back.token, 5u);
  EXPECT_EQ(back.stored, sample_filter());
}

TEST(Protocol, ReqInsertRoundTrip) {
  const ReqInsert back = roundtrip(ReqInsert{sample_filter(), 11});
  EXPECT_EQ(back.filter, sample_filter());
  EXPECT_EQ(back.child, 11u);
}

TEST(Protocol, RenewRoundTrip) {
  const Renew back = roundtrip(Renew{sample_filter(), 6});
  EXPECT_EQ(back.filter, sample_filter());
  EXPECT_EQ(back.child, 6u);
}

TEST(Protocol, UnsubRoundTrip) {
  const Unsub back = roundtrip(Unsub{sample_filter(), 8});
  EXPECT_EQ(back.filter, sample_filter());
  EXPECT_EQ(back.child, 8u);
}

TEST(Protocol, EventMsgRoundTrip) {
  workload::BiblioGenerator gen{{}, 1};
  const event::EventImage image = gen.next_event();
  EXPECT_EQ(roundtrip(EventMsg{image}).image, image);
}

TEST(Protocol, CorruptFrameThrows) {
  auto bytes = encode(Packet{JoinAt{1, 2}});
  bytes.back() ^= std::byte{0x01};
  EXPECT_THROW((void)decode(bytes), wire::WireError);
}

TEST(Protocol, UnknownTagThrows) {
  wire::Writer w;
  w.u8(250);
  const auto framed = wire::frame(w.bytes());
  EXPECT_THROW((void)decode(framed), wire::WireError);
}

TEST(Protocol, SentinelNodeIdsSurvive) {
  const Subscribe back = roundtrip(Subscribe{sample_filter(), sim::kNoNode, 0});
  EXPECT_EQ(back.subscriber, sim::kNoNode);
}

}  // namespace
}  // namespace cake::routing
