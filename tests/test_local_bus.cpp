// Tests for the embeddable in-process bus: typed dispatch without
// serialization, closure predicates, reentrancy, and multithreaded
// publishing with an exact delivery oracle.
#include "cake/runtime/local_bus.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "cake/workload/generators.hpp"

namespace cake::runtime {
namespace {

using filter::FilterBuilder;
using filter::Op;
using value::Value;
using workload::Auction;
using workload::CarAuction;
using workload::Stock;
using workload::VehicleAuction;

class LocalBusTest : public ::testing::TestWithParam<index::Engine> {
protected:
  LocalBusTest() : bus_(GetParam()) { workload::ensure_types_registered(); }
  LocalBus bus_;
};

TEST_P(LocalBusTest, TypedDeliveryIsTheOriginalObject) {
  const Stock* seen = nullptr;
  bus_.subscribe<Stock>(
      FilterBuilder{"Stock"}.where("symbol", Op::Eq, Value{"Foo"}).build(),
      [&](const Stock& s) { seen = &s; });
  const Stock quote{"Foo", 9.0, 10};
  EXPECT_EQ(bus_.publish(quote), 1u);
  EXPECT_EQ(seen, &quote);  // no copy, no reconstruction
  EXPECT_EQ(bus_.publish(Stock{"Bar", 9.0, 10}), 0u);
}

TEST_P(LocalBusTest, SubtypeDispatchThroughBaseSubscription) {
  int count = 0;
  bus_.subscribe<Auction>(FilterBuilder{}.build(),
                          [&](const Auction&) { ++count; });
  bus_.publish(Auction{"Estate", 1.0});
  bus_.publish(VehicleAuction{2.0, "Van", 3});
  bus_.publish(CarAuction{3.0, 4, 5});
  bus_.publish(Stock{"Foo", 1.0, 1});
  EXPECT_EQ(count, 3);
}

TEST_P(LocalBusTest, StatefulClosurePredicate) {
  std::vector<double> bought;
  bus_.subscribe<Stock>(
      FilterBuilder{"Stock"}
          .where("symbol", Op::Eq, Value{"Foo"})
          .where("price", Op::Lt, Value{10.0})
          .build(),
      [&](const Stock& s) { bought.push_back(s.price()); },
      [last = 0.0](const Stock& s) mutable {
        const bool dip = last == 0.0 || s.price() <= last * 0.95;
        last = s.price();
        return dip;
      });
  for (double price : {9.0, 8.9, 8.0, 12.0, 7.0})
    bus_.publish(Stock{"Foo", price, 1});
  EXPECT_EQ(bought, (std::vector<double>{9.0, 8.0, 7.0}));
}

TEST_P(LocalBusTest, UnsubscribeStopsDelivery) {
  int count = 0;
  const auto token = bus_.subscribe<Stock>(FilterBuilder{"Stock"}.build(),
                                           [&](const Stock&) { ++count; });
  bus_.publish(Stock{"Foo", 1.0, 1});
  bus_.unsubscribe(token);
  bus_.unsubscribe(token);  // idempotent
  bus_.publish(Stock{"Foo", 1.0, 1});
  EXPECT_EQ(count, 1);
  EXPECT_EQ(bus_.stats().subscriptions, 0u);
}

TEST_P(LocalBusTest, HandlersMayReenterTheBus) {
  int relayed = 0;
  bus_.subscribe<Stock>(
      FilterBuilder{"Stock"}.where("symbol", Op::Eq, Value{"RAW"}).build(),
      [&](const Stock& s) {
        // Re-publish a derived event from inside a handler.
        bus_.publish(Stock{"DERIVED", s.price() * 2, s.volume()});
      });
  bus_.subscribe<Stock>(
      FilterBuilder{"Stock"}.where("symbol", Op::Eq, Value{"DERIVED"}).build(),
      [&](const Stock&) { ++relayed; });
  bus_.publish(Stock{"RAW", 5.0, 1});
  EXPECT_EQ(relayed, 1);

  // Subscribing from a handler must not deadlock either.
  bool added = false;
  bus_.subscribe<Stock>(
      FilterBuilder{"Stock"}.where("symbol", Op::Eq, Value{"ADDER"}).build(),
      [&](const Stock&) {
        if (!added) {
          bus_.subscribe<Stock>(FilterBuilder{"Stock"}.build(), [](const Stock&) {});
          added = true;
        }
      });
  bus_.publish(Stock{"ADDER", 1.0, 1});
  EXPECT_TRUE(added);
}

TEST_P(LocalBusTest, StatsAccumulate) {
  bus_.subscribe<Stock>(FilterBuilder{"Stock"}.build(), [](const Stock&) {});
  bus_.subscribe<Stock>(FilterBuilder{"Stock"}.build(), [](const Stock&) {});
  bus_.publish(Stock{"Foo", 1.0, 1});
  bus_.publish(Auction{"Estate", 1.0});
  const BusStats stats = bus_.stats();
  EXPECT_EQ(stats.events_published, 2u);
  EXPECT_EQ(stats.events_matched, 1u);
  EXPECT_EQ(stats.deliveries, 2u);
  EXPECT_EQ(stats.subscriptions, 2u);
}

TEST_P(LocalBusTest, ConcurrentPublishersExactCounts) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 400;
  std::atomic<std::uint64_t> foo_count{0}, cheap_count{0};
  bus_.subscribe<Stock>(
      FilterBuilder{"Stock"}.where("symbol", Op::Eq, Value{"Foo"}).build(),
      [&](const Stock&) { foo_count.fetch_add(1, std::memory_order_relaxed); });
  bus_.subscribe<Stock>(
      FilterBuilder{"Stock"}.where("price", Op::Lt, Value{50.0}).build(),
      [&](const Stock&) { cheap_count.fetch_add(1, std::memory_order_relaxed); });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Alternate: Foo@100 (first sub only) and Bar@10 (second only).
        if ((i + t) % 2 == 0)
          bus_.publish(Stock{"Foo", 100.0, 1});
        else
          bus_.publish(Stock{"Bar", 10.0, 1});
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(foo_count.load(), kThreads * kPerThread / 2u);
  EXPECT_EQ(cheap_count.load(), kThreads * kPerThread / 2u);
  EXPECT_EQ(bus_.stats().events_published,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST_P(LocalBusTest, ConcurrentChurnDoesNotCrashOrLeakDeliveries) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> delivered{0};
  std::thread churn{[&] {
    while (!stop.load()) {
      const auto token = bus_.subscribe<Stock>(
          FilterBuilder{"Stock"}.build(),
          [&](const Stock&) { delivered.fetch_add(1); });
      bus_.unsubscribe(token);
    }
  }};
  std::uint64_t published = 0;
  for (int i = 0; i < 1'000; ++i) {
    bus_.publish(Stock{"Foo", 1.0, 1});
    ++published;
  }
  stop.store(true);
  churn.join();
  // Deliveries can never exceed publishes (each publish matches ≤ 1 live
  // subscription in this setup).
  EXPECT_LE(delivered.load(), published);
}

INSTANTIATE_TEST_SUITE_P(Engines, LocalBusTest,
                         ::testing::Values(index::Engine::Naive,
                                           index::Engine::Counting,
                                           index::Engine::Trie,
                                           index::Engine::ShardedCounting),
                         [](const auto& info) {
                           switch (info.param) {
                             case index::Engine::Naive: return "Naive";
                             case index::Engine::Counting: return "Counting";
                             case index::Engine::Trie: return "Trie";
                             default: return "ShardedCounting";
                           }
                         });

}  // namespace
}  // namespace cake::runtime
