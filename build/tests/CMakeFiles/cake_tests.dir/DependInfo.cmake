
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline.cpp" "tests/CMakeFiles/cake_tests.dir/test_baseline.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_baseline.cpp.o.d"
  "/root/repo/tests/test_broker.cpp" "tests/CMakeFiles/cake_tests.dir/test_broker.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_broker.cpp.o.d"
  "/root/repo/tests/test_cli.cpp" "tests/CMakeFiles/cake_tests.dir/test_cli.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_cli.cpp.o.d"
  "/root/repo/tests/test_collapse_routing.cpp" "tests/CMakeFiles/cake_tests.dir/test_collapse_routing.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_collapse_routing.cpp.o.d"
  "/root/repo/tests/test_constraint.cpp" "tests/CMakeFiles/cake_tests.dir/test_constraint.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_constraint.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/cake_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_edges.cpp" "tests/CMakeFiles/cake_tests.dir/test_edges.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_edges.cpp.o.d"
  "/root/repo/tests/test_endpoints.cpp" "tests/CMakeFiles/cake_tests.dir/test_endpoints.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_endpoints.cpp.o.d"
  "/root/repo/tests/test_event.cpp" "tests/CMakeFiles/cake_tests.dir/test_event.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_event.cpp.o.d"
  "/root/repo/tests/test_evolution.cpp" "tests/CMakeFiles/cake_tests.dir/test_evolution.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_evolution.cpp.o.d"
  "/root/repo/tests/test_filter.cpp" "tests/CMakeFiles/cake_tests.dir/test_filter.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_filter.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/cake_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_index.cpp" "tests/CMakeFiles/cake_tests.dir/test_index.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_index.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/cake_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_local_bus.cpp" "tests/CMakeFiles/cake_tests.dir/test_local_bus.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_local_bus.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/cake_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_op.cpp" "tests/CMakeFiles/cake_tests.dir/test_op.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_op.cpp.o.d"
  "/root/repo/tests/test_overlaps.cpp" "tests/CMakeFiles/cake_tests.dir/test_overlaps.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_overlaps.cpp.o.d"
  "/root/repo/tests/test_overlay.cpp" "tests/CMakeFiles/cake_tests.dir/test_overlay.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_overlay.cpp.o.d"
  "/root/repo/tests/test_paper_examples.cpp" "tests/CMakeFiles/cake_tests.dir/test_paper_examples.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_paper_examples.cpp.o.d"
  "/root/repo/tests/test_peer.cpp" "tests/CMakeFiles/cake_tests.dir/test_peer.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_peer.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/cake_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_protocol.cpp" "tests/CMakeFiles/cake_tests.dir/test_protocol.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_protocol.cpp.o.d"
  "/root/repo/tests/test_reflect.cpp" "tests/CMakeFiles/cake_tests.dir/test_reflect.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_reflect.cpp.o.d"
  "/root/repo/tests/test_regex.cpp" "tests/CMakeFiles/cake_tests.dir/test_regex.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_regex.cpp.o.d"
  "/root/repo/tests/test_resilience.cpp" "tests/CMakeFiles/cake_tests.dir/test_resilience.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_resilience.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/cake_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_sampler.cpp" "tests/CMakeFiles/cake_tests.dir/test_sampler.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_sampler.cpp.o.d"
  "/root/repo/tests/test_schema.cpp" "tests/CMakeFiles/cake_tests.dir/test_schema.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_schema.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/cake_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_soak.cpp" "tests/CMakeFiles/cake_tests.dir/test_soak.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_soak.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/cake_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_topics.cpp" "tests/CMakeFiles/cake_tests.dir/test_topics.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_topics.cpp.o.d"
  "/root/repo/tests/test_value.cpp" "tests/CMakeFiles/cake_tests.dir/test_value.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_value.cpp.o.d"
  "/root/repo/tests/test_weaken.cpp" "tests/CMakeFiles/cake_tests.dir/test_weaken.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_weaken.cpp.o.d"
  "/root/repo/tests/test_wire.cpp" "tests/CMakeFiles/cake_tests.dir/test_wire.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_wire.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/cake_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_workload.cpp.o.d"
  "/root/repo/tests/test_zipf.cpp" "tests/CMakeFiles/cake_tests.dir/test_zipf.cpp.o" "gcc" "tests/CMakeFiles/cake_tests.dir/test_zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cake_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_peer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_weaken.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_reflect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_value.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
