# Empty dependencies file for cake_tests.
# This may be replaced when dependencies are built.
