file(REMOVE_RECURSE
  "CMakeFiles/simulator.dir/simulator.cpp.o"
  "CMakeFiles/simulator.dir/simulator.cpp.o.d"
  "simulator"
  "simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
