# Empty dependencies file for simulator.
# This may be replaced when dependencies are built.
