# Empty compiler generated dependencies file for simulator.
# This may be replaced when dependencies are built.
