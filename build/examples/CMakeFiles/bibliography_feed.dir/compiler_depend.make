# Empty compiler generated dependencies file for bibliography_feed.
# This may be replaced when dependencies are built.
