file(REMOVE_RECURSE
  "CMakeFiles/bibliography_feed.dir/bibliography_feed.cpp.o"
  "CMakeFiles/bibliography_feed.dir/bibliography_feed.cpp.o.d"
  "bibliography_feed"
  "bibliography_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibliography_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
