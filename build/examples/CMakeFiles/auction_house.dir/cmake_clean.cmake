file(REMOVE_RECURSE
  "CMakeFiles/auction_house.dir/auction_house.cpp.o"
  "CMakeFiles/auction_house.dir/auction_house.cpp.o.d"
  "auction_house"
  "auction_house.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_house.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
