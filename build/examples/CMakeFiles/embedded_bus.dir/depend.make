# Empty dependencies file for embedded_bus.
# This may be replaced when dependencies are built.
