file(REMOVE_RECURSE
  "CMakeFiles/embedded_bus.dir/embedded_bus.cpp.o"
  "CMakeFiles/embedded_bus.dir/embedded_bus.cpp.o.d"
  "embedded_bus"
  "embedded_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedded_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
