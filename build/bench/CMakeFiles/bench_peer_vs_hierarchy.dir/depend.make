# Empty dependencies file for bench_peer_vs_hierarchy.
# This may be replaced when dependencies are built.
