file(REMOVE_RECURSE
  "CMakeFiles/bench_peer_vs_hierarchy.dir/bench_peer_vs_hierarchy.cpp.o"
  "CMakeFiles/bench_peer_vs_hierarchy.dir/bench_peer_vs_hierarchy.cpp.o.d"
  "bench_peer_vs_hierarchy"
  "bench_peer_vs_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_peer_vs_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
