# Empty dependencies file for bench_topics.
# This may be replaced when dependencies are built.
