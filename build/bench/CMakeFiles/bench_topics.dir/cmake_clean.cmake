file(REMOVE_RECURSE
  "CMakeFiles/bench_topics.dir/bench_topics.cpp.o"
  "CMakeFiles/bench_topics.dir/bench_topics.cpp.o.d"
  "bench_topics"
  "bench_topics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
