file(REMOVE_RECURSE
  "CMakeFiles/bench_matching_rate.dir/bench_matching_rate.cpp.o"
  "CMakeFiles/bench_matching_rate.dir/bench_matching_rate.cpp.o.d"
  "bench_matching_rate"
  "bench_matching_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matching_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
