# Empty compiler generated dependencies file for bench_matching_rate.
# This may be replaced when dependencies are built.
