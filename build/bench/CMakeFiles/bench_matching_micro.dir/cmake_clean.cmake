file(REMOVE_RECURSE
  "CMakeFiles/bench_matching_micro.dir/bench_matching_micro.cpp.o"
  "CMakeFiles/bench_matching_micro.dir/bench_matching_micro.cpp.o.d"
  "bench_matching_micro"
  "bench_matching_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matching_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
