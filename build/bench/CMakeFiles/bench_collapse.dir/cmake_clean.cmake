file(REMOVE_RECURSE
  "CMakeFiles/bench_collapse.dir/bench_collapse.cpp.o"
  "CMakeFiles/bench_collapse.dir/bench_collapse.cpp.o.d"
  "bench_collapse"
  "bench_collapse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collapse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
