# Empty compiler generated dependencies file for bench_stage_depth.
# This may be replaced when dependencies are built.
