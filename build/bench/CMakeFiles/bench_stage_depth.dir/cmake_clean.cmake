file(REMOVE_RECURSE
  "CMakeFiles/bench_stage_depth.dir/bench_stage_depth.cpp.o"
  "CMakeFiles/bench_stage_depth.dir/bench_stage_depth.cpp.o.d"
  "bench_stage_depth"
  "bench_stage_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stage_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
