file(REMOVE_RECURSE
  "CMakeFiles/bench_wildcards.dir/bench_wildcards.cpp.o"
  "CMakeFiles/bench_wildcards.dir/bench_wildcards.cpp.o.d"
  "bench_wildcards"
  "bench_wildcards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wildcards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
