# Empty compiler generated dependencies file for bench_wildcards.
# This may be replaced when dependencies are built.
