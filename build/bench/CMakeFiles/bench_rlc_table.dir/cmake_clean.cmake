file(REMOVE_RECURSE
  "CMakeFiles/bench_rlc_table.dir/bench_rlc_table.cpp.o"
  "CMakeFiles/bench_rlc_table.dir/bench_rlc_table.cpp.o.d"
  "bench_rlc_table"
  "bench_rlc_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rlc_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
