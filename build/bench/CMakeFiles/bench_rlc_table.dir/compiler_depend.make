# Empty compiler generated dependencies file for bench_rlc_table.
# This may be replaced when dependencies are built.
