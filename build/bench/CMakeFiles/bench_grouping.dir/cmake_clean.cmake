file(REMOVE_RECURSE
  "CMakeFiles/bench_grouping.dir/bench_grouping.cpp.o"
  "CMakeFiles/bench_grouping.dir/bench_grouping.cpp.o.d"
  "bench_grouping"
  "bench_grouping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grouping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
