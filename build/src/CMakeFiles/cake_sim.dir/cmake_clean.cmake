file(REMOVE_RECURSE
  "CMakeFiles/cake_sim.dir/cake/sim/sim.cpp.o"
  "CMakeFiles/cake_sim.dir/cake/sim/sim.cpp.o.d"
  "libcake_sim.a"
  "libcake_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cake_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
