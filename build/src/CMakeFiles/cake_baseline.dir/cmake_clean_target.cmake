file(REMOVE_RECURSE
  "libcake_baseline.a"
)
