# Empty compiler generated dependencies file for cake_baseline.
# This may be replaced when dependencies are built.
