file(REMOVE_RECURSE
  "CMakeFiles/cake_baseline.dir/cake/baseline/baseline.cpp.o"
  "CMakeFiles/cake_baseline.dir/cake/baseline/baseline.cpp.o.d"
  "CMakeFiles/cake_baseline.dir/cake/baseline/topics.cpp.o"
  "CMakeFiles/cake_baseline.dir/cake/baseline/topics.cpp.o.d"
  "libcake_baseline.a"
  "libcake_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cake_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
