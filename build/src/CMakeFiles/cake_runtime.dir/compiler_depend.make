# Empty compiler generated dependencies file for cake_runtime.
# This may be replaced when dependencies are built.
