file(REMOVE_RECURSE
  "CMakeFiles/cake_runtime.dir/cake/runtime/local_bus.cpp.o"
  "CMakeFiles/cake_runtime.dir/cake/runtime/local_bus.cpp.o.d"
  "libcake_runtime.a"
  "libcake_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cake_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
