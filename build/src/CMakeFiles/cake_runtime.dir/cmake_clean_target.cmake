file(REMOVE_RECURSE
  "libcake_runtime.a"
)
