# Empty dependencies file for cake_wire.
# This may be replaced when dependencies are built.
