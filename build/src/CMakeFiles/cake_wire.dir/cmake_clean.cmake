file(REMOVE_RECURSE
  "CMakeFiles/cake_wire.dir/cake/wire/wire.cpp.o"
  "CMakeFiles/cake_wire.dir/cake/wire/wire.cpp.o.d"
  "libcake_wire.a"
  "libcake_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cake_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
