file(REMOVE_RECURSE
  "libcake_wire.a"
)
