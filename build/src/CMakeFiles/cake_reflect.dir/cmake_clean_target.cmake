file(REMOVE_RECURSE
  "libcake_reflect.a"
)
