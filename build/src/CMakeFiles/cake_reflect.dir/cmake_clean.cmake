file(REMOVE_RECURSE
  "CMakeFiles/cake_reflect.dir/cake/reflect/reflect.cpp.o"
  "CMakeFiles/cake_reflect.dir/cake/reflect/reflect.cpp.o.d"
  "libcake_reflect.a"
  "libcake_reflect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cake_reflect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
