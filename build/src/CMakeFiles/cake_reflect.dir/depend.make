# Empty dependencies file for cake_reflect.
# This may be replaced when dependencies are built.
