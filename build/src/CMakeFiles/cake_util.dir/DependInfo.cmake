
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cake/util/cli.cpp" "src/CMakeFiles/cake_util.dir/cake/util/cli.cpp.o" "gcc" "src/CMakeFiles/cake_util.dir/cake/util/cli.cpp.o.d"
  "/root/repo/src/cake/util/regex.cpp" "src/CMakeFiles/cake_util.dir/cake/util/regex.cpp.o" "gcc" "src/CMakeFiles/cake_util.dir/cake/util/regex.cpp.o.d"
  "/root/repo/src/cake/util/rng.cpp" "src/CMakeFiles/cake_util.dir/cake/util/rng.cpp.o" "gcc" "src/CMakeFiles/cake_util.dir/cake/util/rng.cpp.o.d"
  "/root/repo/src/cake/util/stats.cpp" "src/CMakeFiles/cake_util.dir/cake/util/stats.cpp.o" "gcc" "src/CMakeFiles/cake_util.dir/cake/util/stats.cpp.o.d"
  "/root/repo/src/cake/util/table.cpp" "src/CMakeFiles/cake_util.dir/cake/util/table.cpp.o" "gcc" "src/CMakeFiles/cake_util.dir/cake/util/table.cpp.o.d"
  "/root/repo/src/cake/util/zipf.cpp" "src/CMakeFiles/cake_util.dir/cake/util/zipf.cpp.o" "gcc" "src/CMakeFiles/cake_util.dir/cake/util/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
