file(REMOVE_RECURSE
  "libcake_util.a"
)
