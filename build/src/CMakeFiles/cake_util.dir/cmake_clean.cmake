file(REMOVE_RECURSE
  "CMakeFiles/cake_util.dir/cake/util/cli.cpp.o"
  "CMakeFiles/cake_util.dir/cake/util/cli.cpp.o.d"
  "CMakeFiles/cake_util.dir/cake/util/regex.cpp.o"
  "CMakeFiles/cake_util.dir/cake/util/regex.cpp.o.d"
  "CMakeFiles/cake_util.dir/cake/util/rng.cpp.o"
  "CMakeFiles/cake_util.dir/cake/util/rng.cpp.o.d"
  "CMakeFiles/cake_util.dir/cake/util/stats.cpp.o"
  "CMakeFiles/cake_util.dir/cake/util/stats.cpp.o.d"
  "CMakeFiles/cake_util.dir/cake/util/table.cpp.o"
  "CMakeFiles/cake_util.dir/cake/util/table.cpp.o.d"
  "CMakeFiles/cake_util.dir/cake/util/zipf.cpp.o"
  "CMakeFiles/cake_util.dir/cake/util/zipf.cpp.o.d"
  "libcake_util.a"
  "libcake_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cake_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
