# Empty compiler generated dependencies file for cake_util.
# This may be replaced when dependencies are built.
