# Empty compiler generated dependencies file for cake_peer.
# This may be replaced when dependencies are built.
