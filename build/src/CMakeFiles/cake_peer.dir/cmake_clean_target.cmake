file(REMOVE_RECURSE
  "libcake_peer.a"
)
