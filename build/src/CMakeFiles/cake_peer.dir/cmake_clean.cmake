file(REMOVE_RECURSE
  "CMakeFiles/cake_peer.dir/cake/peer/peer.cpp.o"
  "CMakeFiles/cake_peer.dir/cake/peer/peer.cpp.o.d"
  "libcake_peer.a"
  "libcake_peer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cake_peer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
