file(REMOVE_RECURSE
  "libcake_value.a"
)
