# Empty compiler generated dependencies file for cake_value.
# This may be replaced when dependencies are built.
