file(REMOVE_RECURSE
  "CMakeFiles/cake_value.dir/cake/value/value.cpp.o"
  "CMakeFiles/cake_value.dir/cake/value/value.cpp.o.d"
  "libcake_value.a"
  "libcake_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cake_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
