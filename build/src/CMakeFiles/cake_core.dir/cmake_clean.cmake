file(REMOVE_RECURSE
  "CMakeFiles/cake_core.dir/cake/core/event_system.cpp.o"
  "CMakeFiles/cake_core.dir/cake/core/event_system.cpp.o.d"
  "libcake_core.a"
  "libcake_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cake_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
