# Empty dependencies file for cake_filter.
# This may be replaced when dependencies are built.
