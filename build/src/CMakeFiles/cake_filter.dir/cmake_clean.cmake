file(REMOVE_RECURSE
  "CMakeFiles/cake_filter.dir/cake/filter/constraint.cpp.o"
  "CMakeFiles/cake_filter.dir/cake/filter/constraint.cpp.o.d"
  "CMakeFiles/cake_filter.dir/cake/filter/filter.cpp.o"
  "CMakeFiles/cake_filter.dir/cake/filter/filter.cpp.o.d"
  "CMakeFiles/cake_filter.dir/cake/filter/op.cpp.o"
  "CMakeFiles/cake_filter.dir/cake/filter/op.cpp.o.d"
  "libcake_filter.a"
  "libcake_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cake_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
