file(REMOVE_RECURSE
  "libcake_filter.a"
)
