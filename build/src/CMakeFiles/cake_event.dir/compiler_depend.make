# Empty compiler generated dependencies file for cake_event.
# This may be replaced when dependencies are built.
