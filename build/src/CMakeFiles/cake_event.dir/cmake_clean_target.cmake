file(REMOVE_RECURSE
  "libcake_event.a"
)
