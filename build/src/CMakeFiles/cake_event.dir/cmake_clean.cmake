file(REMOVE_RECURSE
  "CMakeFiles/cake_event.dir/cake/event/event.cpp.o"
  "CMakeFiles/cake_event.dir/cake/event/event.cpp.o.d"
  "libcake_event.a"
  "libcake_event.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cake_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
