# Empty dependencies file for cake_routing.
# This may be replaced when dependencies are built.
