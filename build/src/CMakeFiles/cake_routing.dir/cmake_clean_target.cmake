file(REMOVE_RECURSE
  "libcake_routing.a"
)
