
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cake/routing/broker.cpp" "src/CMakeFiles/cake_routing.dir/cake/routing/broker.cpp.o" "gcc" "src/CMakeFiles/cake_routing.dir/cake/routing/broker.cpp.o.d"
  "/root/repo/src/cake/routing/endpoints.cpp" "src/CMakeFiles/cake_routing.dir/cake/routing/endpoints.cpp.o" "gcc" "src/CMakeFiles/cake_routing.dir/cake/routing/endpoints.cpp.o.d"
  "/root/repo/src/cake/routing/overlay.cpp" "src/CMakeFiles/cake_routing.dir/cake/routing/overlay.cpp.o" "gcc" "src/CMakeFiles/cake_routing.dir/cake/routing/overlay.cpp.o.d"
  "/root/repo/src/cake/routing/protocol.cpp" "src/CMakeFiles/cake_routing.dir/cake/routing/protocol.cpp.o" "gcc" "src/CMakeFiles/cake_routing.dir/cake/routing/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cake_weaken.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_reflect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_value.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
