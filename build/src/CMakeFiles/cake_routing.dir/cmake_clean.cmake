file(REMOVE_RECURSE
  "CMakeFiles/cake_routing.dir/cake/routing/broker.cpp.o"
  "CMakeFiles/cake_routing.dir/cake/routing/broker.cpp.o.d"
  "CMakeFiles/cake_routing.dir/cake/routing/endpoints.cpp.o"
  "CMakeFiles/cake_routing.dir/cake/routing/endpoints.cpp.o.d"
  "CMakeFiles/cake_routing.dir/cake/routing/overlay.cpp.o"
  "CMakeFiles/cake_routing.dir/cake/routing/overlay.cpp.o.d"
  "CMakeFiles/cake_routing.dir/cake/routing/protocol.cpp.o"
  "CMakeFiles/cake_routing.dir/cake/routing/protocol.cpp.o.d"
  "libcake_routing.a"
  "libcake_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cake_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
