file(REMOVE_RECURSE
  "libcake_metrics.a"
)
