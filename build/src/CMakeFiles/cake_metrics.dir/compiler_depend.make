# Empty compiler generated dependencies file for cake_metrics.
# This may be replaced when dependencies are built.
