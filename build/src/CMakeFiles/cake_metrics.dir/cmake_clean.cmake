file(REMOVE_RECURSE
  "CMakeFiles/cake_metrics.dir/cake/metrics/metrics.cpp.o"
  "CMakeFiles/cake_metrics.dir/cake/metrics/metrics.cpp.o.d"
  "CMakeFiles/cake_metrics.dir/cake/metrics/sampler.cpp.o"
  "CMakeFiles/cake_metrics.dir/cake/metrics/sampler.cpp.o.d"
  "libcake_metrics.a"
  "libcake_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cake_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
