file(REMOVE_RECURSE
  "libcake_index.a"
)
