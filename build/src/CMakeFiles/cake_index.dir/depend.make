# Empty dependencies file for cake_index.
# This may be replaced when dependencies are built.
