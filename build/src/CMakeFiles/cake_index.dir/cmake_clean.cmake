file(REMOVE_RECURSE
  "CMakeFiles/cake_index.dir/cake/index/index.cpp.o"
  "CMakeFiles/cake_index.dir/cake/index/index.cpp.o.d"
  "libcake_index.a"
  "libcake_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cake_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
