file(REMOVE_RECURSE
  "CMakeFiles/cake_weaken.dir/cake/weaken/schema.cpp.o"
  "CMakeFiles/cake_weaken.dir/cake/weaken/schema.cpp.o.d"
  "CMakeFiles/cake_weaken.dir/cake/weaken/weaken.cpp.o"
  "CMakeFiles/cake_weaken.dir/cake/weaken/weaken.cpp.o.d"
  "libcake_weaken.a"
  "libcake_weaken.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cake_weaken.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
