# Empty dependencies file for cake_weaken.
# This may be replaced when dependencies are built.
