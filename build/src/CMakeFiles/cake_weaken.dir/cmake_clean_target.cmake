file(REMOVE_RECURSE
  "libcake_weaken.a"
)
