file(REMOVE_RECURSE
  "libcake_workload.a"
)
