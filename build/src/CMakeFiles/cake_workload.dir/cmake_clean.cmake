file(REMOVE_RECURSE
  "CMakeFiles/cake_workload.dir/cake/workload/generators.cpp.o"
  "CMakeFiles/cake_workload.dir/cake/workload/generators.cpp.o.d"
  "CMakeFiles/cake_workload.dir/cake/workload/types.cpp.o"
  "CMakeFiles/cake_workload.dir/cake/workload/types.cpp.o.d"
  "libcake_workload.a"
  "libcake_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cake_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
