
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cake/workload/generators.cpp" "src/CMakeFiles/cake_workload.dir/cake/workload/generators.cpp.o" "gcc" "src/CMakeFiles/cake_workload.dir/cake/workload/generators.cpp.o.d"
  "/root/repo/src/cake/workload/types.cpp" "src/CMakeFiles/cake_workload.dir/cake/workload/types.cpp.o" "gcc" "src/CMakeFiles/cake_workload.dir/cake/workload/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cake_event.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_weaken.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_reflect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_value.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cake_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
