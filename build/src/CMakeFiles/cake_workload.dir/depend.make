# Empty dependencies file for cake_workload.
# This may be replaced when dependencies are built.
