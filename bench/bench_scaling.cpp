// Experiments A6 + A18 — the paper's scaling claims (§5.3 discussion):
//
//   "The system scales better also with the number of subscriptions since
//    by adding a few intermediate nodes, the number of subscribers can be
//    increased significantly without increasing the required computational
//    power at any node"  and  "the event system hence scales in terms of
//    message rate".
//
// Two sweeps on the paper topology:
//   (a) subscribers 50→1200 at a fixed event count — max per-node RLC must
//       stay flat or fall (more subscribers amortize the same weakened
//       filters);
//   (b) events 1k→32k at fixed subscribers — per-node LC grows linearly
//       with rate, but RLC (work relative to a centralized server doing
//       the same job) stays constant.
//
// A18 (section d) pushes the *per-broker table* to the paper's "millions
// of subscriptions" regime: 1M+ Zipf-covered biblio subscriptions into one
// matching index, unmerged vs LUB-aggregated (DESIGN.md §13), measuring
// index entries and bytes per subscription, match latency and lease-churn
// cost — with a per-probe superset-exactness check (the aggregated match
// set must contain the unmerged one; any violation fails the run). Writes
// BENCH_scaling.json for tools/bench_gate.py.
//
//   CAKE_SCALING_SUBS      subscription count for A18 (default 1'000'000;
//                          the CI smoke lane runs 200'000)
//   CAKE_SCALING_SECTIONS  "all" (default) or "a18" to skip the A6 sweeps
#include <algorithm>
#include <chrono>
#include <fstream>

#include "cake/index/aggregate.hpp"
#include "cake/util/env.hpp"
#include "harness.hpp"

namespace {

using namespace cake;

std::size_t filter_bytes(const filter::ConjunctiveFilter& f) {
  std::size_t bytes = sizeof(filter::ConjunctiveFilter) +
                      f.type().name.capacity() +
                      f.constraints().capacity() *
                          sizeof(filter::AttributeConstraint);
  for (const auto& c : f.constraints()) {
    bytes += c.name.capacity();
    if (c.operand.kind() == value::Kind::String)
      bytes += c.operand.as_string().capacity();
  }
  return bytes;
}

struct ScalingArm {
  std::string name;
  bool aggregated = false;
  std::size_t entries = 0;          ///< live entries in the matching engine
  double entries_per_sub = 1.0;
  double index_bytes_per_sub = 0.0; ///< matching-structure filter footprint
  double build_subs_per_sec = 0.0;
  double match_events_per_sec = 0.0;
  double churn_ops_per_sec = 0.0;
  std::uint64_t deliveries = 0;     ///< Σ matched ids over the probe set
  std::uint64_t superset_violations = 0;
  index::AggregateStats agg;        ///< aggregated arms only
};

// One engine's pair of arms: the same Zipf-covered population into an
// unmerged index and an AggregatedIndex over the same engine, probed with
// the same events. The superset check runs inside the probe loop.
std::pair<ScalingArm, ScalingArm> run_scaling_pair(index::Engine engine,
                                                   const std::string& tag,
                                                   std::size_t subs,
                                                   std::size_t probes,
                                                   std::size_t churn_ops) {
  using Clock = std::chrono::steady_clock;
  const auto& registry = reflect::TypeRegistry::global();

  ScalingArm plain_arm{tag, false};
  ScalingArm agg_arm{tag + "-agg", true};

  auto plain = index::make_index(engine, registry);
  index::AggregateConfig agg_config;
  agg_config.enabled = true;
  agg_config.engine = engine;
  // Table-scale knobs: at 10^6 entries the Zipf head piles hundreds of
  // duplicates onto each popular shape, so groups must hold more than the
  // broker default (un-merge refold stays bounded at max_group joins) and
  // the probe must look past the first few MRU groups to find them.
  agg_config.max_group = 256;
  agg_config.probe_limit = 16;
  index::AggregatedIndex agg{agg_config, registry};

  // Zipf-covered population: the four wildcard shapes of §4.4 over a
  // denser-than-default combo space (the paper's regime — hundreds of
  // thousands of subscribers whose interests *cluster*), so the Zipf head
  // piles real duplication onto the popular shapes at any scale.
  workload::BiblioConfig biblio;
  biblio.conferences = 10;
  biblio.authors = 40;
  biblio.titles_per_combo = 2;
  workload::BiblioGenerator gen{biblio, 1812};
  {
    std::vector<filter::ConjunctiveFilter> batch;
    batch.reserve(subs);
    for (std::size_t i = 0; i < subs; ++i)
      batch.push_back(gen.next_subscription(i % 4));

    auto t0 = Clock::now();
    for (auto& f : batch) plain->add(f);
    const double plain_s = std::chrono::duration<double>(Clock::now() - t0).count();
    plain_arm.build_subs_per_sec = static_cast<double>(subs) / plain_s;

    std::size_t plain_bytes = 0;
    for (const auto& f : batch) plain_bytes += filter_bytes(f);
    plain_arm.index_bytes_per_sub =
        static_cast<double>(plain_bytes) / static_cast<double>(subs);

    t0 = Clock::now();
    for (auto& f : batch) agg.add(std::move(f));
    const double agg_s = std::chrono::duration<double>(Clock::now() - t0).count();
    agg_arm.build_subs_per_sec = static_cast<double>(subs) / agg_s;
  }

  plain_arm.entries = plain->size();
  plain_arm.entries_per_sub = 1.0;
  agg_arm.agg = agg.stats();
  agg_arm.entries = agg_arm.agg.groups;
  agg_arm.entries_per_sub = agg_arm.agg.entries_per_subscription();
  std::size_t rep_bytes = 0;
  for (const auto& rep : agg.group_reps()) rep_bytes += filter_bytes(rep);
  agg_arm.index_bytes_per_sub =
      static_cast<double>(rep_bytes) / static_cast<double>(subs);

  // Probe phase: identical events through both indexes; the aggregated
  // match set must contain the unmerged one on every single probe.
  {
    std::vector<event::EventImage> events;
    events.reserve(probes);
    for (std::size_t i = 0; i < probes; ++i) events.push_back(gen.next_event());

    std::vector<index::FilterId> out;
    auto t0 = Clock::now();
    for (const auto& image : events) {
      plain->match(image, out);
      plain_arm.deliveries += out.size();
    }
    plain_arm.match_events_per_sec =
        static_cast<double>(probes) /
        std::chrono::duration<double>(Clock::now() - t0).count();

    t0 = Clock::now();
    for (const auto& image : events) {
      agg.match(image, out);
      agg_arm.deliveries += out.size();
    }
    agg_arm.match_events_per_sec =
        static_cast<double>(probes) /
        std::chrono::duration<double>(Clock::now() - t0).count();

    std::vector<index::FilterId> exact, merged;
    for (const auto& image : events) {
      plain->match(image, exact);
      agg.match(image, merged);
      std::sort(exact.begin(), exact.end());
      std::sort(merged.begin(), merged.end());
      if (!std::includes(merged.begin(), merged.end(), exact.begin(),
                         exact.end()))
        ++agg_arm.superset_violations;
    }
  }

  // Churn phase (aggregated arm only pays the un-merge/re-fold cost; the
  // unmerged arm gives the baseline): expire-and-replace cycles plus the
  // broker's periodic incremental re-clustering.
  {
    util::Rng churn_rng{77};
    std::vector<index::FilterId> live(subs);
    for (std::size_t i = 0; i < subs; ++i) live[i] = static_cast<index::FilterId>(i);
    const auto churn = [&](index::MatchIndex& idx, bool rebalance) {
      const auto t0 = Clock::now();
      for (std::size_t op = 0; op < churn_ops; ++op) {
        const std::size_t slot = churn_rng.below(live.size());
        idx.remove(live[slot]);
        live[slot] = idx.add(gen.next_subscription(op % 4));
        if (rebalance && op % 1024 == 0) agg.rebalance(32);
      }
      return static_cast<double>(churn_ops) /
             std::chrono::duration<double>(Clock::now() - t0).count();
    };
    plain_arm.churn_ops_per_sec = churn(*plain, false);
    // Fresh id table for the aggregated index (same outer-id sequence).
    for (std::size_t i = 0; i < subs; ++i) live[i] = static_cast<index::FilterId>(i);
    churn_rng = util::Rng{77};
    agg_arm.churn_ops_per_sec = churn(agg, true);
  }

  return {std::move(plain_arm), std::move(agg_arm)};
}

}  // namespace

int main() {
  const std::size_t a18_subs =
      static_cast<std::size_t>(util::env_u64("CAKE_SCALING_SUBS").value_or(1'000'000));
  const bool a18_only =
      util::env_string("CAKE_SCALING_SECTIONS").value_or("all") == "a18";

  using namespace cake;

  if (!a18_only) {
  std::cout << "=== A6: Scaling sweeps (paper §5.3 discussion) ===\n\n";

  std::cout << "(a) subscriber sweep, 5000 events:\n";
  util::TextTable subs_table{{"Subscribers", "Max node RLC", "Max broker LC",
                              "Stage-1 filters (avg)", "Messages/event"}};
  for (const std::size_t subscribers : {50u, 150u, 400u, 1200u}) {
    bench::SimConfig config;
    config.stage_counts = {1, 10, 100};
    config.subscribers = subscribers;
    config.events = 5'000;
    const bench::SimResult result = bench::run_biblio_sim(config);

    double max_rlc = 0.0, max_lc = 0.0;
    double stage1_filters = 0.0;
    std::size_t stage1_nodes = 0;
    for (const auto& load : result.broker_loads) {
      max_rlc = std::max(max_rlc, load.rlc(config.events, subscribers));
      max_lc = std::max(max_lc, load.lc());
      if (load.stage == 1) {
        stage1_filters += static_cast<double>(load.filters);
        ++stage1_nodes;
      }
    }
    subs_table.add_row(
        {std::to_string(subscribers), util::format_number(max_rlc),
         util::format_number(max_lc),
         util::format_number(stage1_filters / double(stage1_nodes)),
         util::format_number(static_cast<double>(result.network_messages) /
                             static_cast<double>(config.events))});
  }
  subs_table.print(std::cout);

  std::cout << "\n(b) event-rate sweep, 150 subscribers:\n";
  util::TextTable events_table{{"Events", "Max broker LC", "Max node RLC",
                                "Global RLC", "Deliveries"}};
  for (const std::size_t events : {1'000u, 4'000u, 16'000u, 32'000u}) {
    bench::SimConfig config;
    config.stage_counts = {1, 10, 100};
    config.subscribers = 150;
    config.events = events;
    const bench::SimResult result = bench::run_biblio_sim(config);

    double max_rlc = 0.0, max_lc = 0.0;
    for (const auto& load : result.broker_loads) {
      max_rlc = std::max(max_rlc, load.rlc(events, config.subscribers));
      max_lc = std::max(max_lc, load.lc());
    }
    events_table.add_row({std::to_string(events), util::format_number(max_lc),
                          util::format_number(max_rlc),
                          util::format_number(metrics::global_rlc(result.summaries())),
                          std::to_string(result.deliveries)});
  }
  events_table.print(std::cout);

  std::cout << "\n(c) subscriptions-per-subscriber sweep, 150 subscribers, "
               "5000 events (paper: millions of subscriptions over hundreds "
               "of thousands of subscribers):\n";
  util::TextTable density_table{{"Subs/subscriber", "Total subscriptions",
                                 "Stage-1 filters", "Max broker LC",
                                 "Messages"}};
  for (const std::size_t density : {1u, 2u, 4u, 8u}) {
    bench::SimConfig config;
    config.stage_counts = {1, 10, 100};
    config.subscribers = 150;
    config.events = 5'000;
    config.subscriptions_per_subscriber = density;
    const bench::SimResult result = bench::run_biblio_sim(config);
    std::size_t stage1_filters = 0;
    double max_lc = 0.0;
    for (const auto& load : result.broker_loads) {
      if (load.stage == 1) stage1_filters += load.filters;
      max_lc = std::max(max_lc, load.lc());
    }
    density_table.add_row({std::to_string(density),
                           std::to_string(150 * density),
                           std::to_string(stage1_filters),
                           util::format_number(max_lc),
                           std::to_string(result.network_messages)});
  }
  density_table.print(std::cout);

  std::cout << "\nShape check: (a) max RLC flat-or-falling as subscribers "
               "grow; (b) LC linear in the event rate while RLC stays "
               "constant; (c) broker filter tables grow sublinearly in the "
               "subscription count (clustering + weakened-form dedup).\n";
  }  // !a18_only

  // ---- (d) A18: the million-subscription aggregated filter table ----------
  workload::ensure_types_registered();
  const std::string suffix = std::to_string(a18_subs / 1000) + "k";
  const std::size_t probes = 400;
  const std::size_t churn_ops = std::min<std::size_t>(20'000, a18_subs / 4);

  std::cout << "\n=== A18: subscription aggregation at " << a18_subs
            << " subscriptions ===\n"
            << "Zipf-covered biblio population (§4.4 wildcard shapes), "
            << probes << " probe events, " << churn_ops
            << " expire-and-replace churn ops\n\n";

  std::vector<ScalingArm> arms;
  for (const auto& [engine, tag] :
       {std::pair{index::Engine::Counting, std::string{"counting-"} + suffix},
        std::pair{index::Engine::ShardedCounting,
                  std::string{"sharded-"} + suffix}}) {
    auto [plain_arm, agg_arm] =
        run_scaling_pair(engine, tag, a18_subs, probes, churn_ops);
    arms.push_back(std::move(plain_arm));
    arms.push_back(std::move(agg_arm));
  }

  util::TextTable table{{"Arm", "Entries", "Entries/sub", "Idx bytes/sub",
                         "Build subs/s", "Match ev/s", "Churn ops/s",
                         "Deliveries"}};
  for (const ScalingArm& arm : arms) {
    table.add_row({arm.name, std::to_string(arm.entries),
                   util::format_number(arm.entries_per_sub),
                   util::format_number(arm.index_bytes_per_sub),
                   util::format_number(arm.build_subs_per_sec),
                   util::format_number(arm.match_events_per_sec),
                   util::format_number(arm.churn_ops_per_sec),
                   std::to_string(arm.deliveries)});
  }
  table.print(std::cout);

  bool ok = true;
  for (std::size_t i = 0; i + 1 < arms.size(); i += 2) {
    const ScalingArm& plain_arm = arms[i];
    const ScalingArm& agg_arm = arms[i + 1];
    const double reduction = 1.0 / agg_arm.entries_per_sub;
    std::cout << "\n" << plain_arm.name << " -> " << agg_arm.name
              << ": entries/subscription reduction "
              << util::format_number(reduction) << "x, merge ratio "
              << util::format_number(agg_arm.agg.merge_ratio())
              << " (widened " << agg_arm.agg.widening_merges << ", un-merged "
              << agg_arm.agg.unmerges << ", reclustered "
              << agg_arm.agg.recluster_merges << ", rejected "
              << agg_arm.agg.rejected << ")\n";
    // Acceptance gates (deterministic: the population is seeded). The
    // merged table must be >=5x smaller per subscription on this covered
    // population, and the match sets must be superset-exact on every probe.
    if (reduction < 5.0) {
      std::cerr << "GATE: " << agg_arm.name << " entries/subscription only "
                << util::format_number(reduction) << "x smaller (< 5x)\n";
      ok = false;
    }
    if (agg_arm.superset_violations != 0) {
      std::cerr << "GATE: " << agg_arm.name << " lost matches on "
                << agg_arm.superset_violations << " probes (false negative)\n";
      ok = false;
    }
    if (agg_arm.deliveries < plain_arm.deliveries) {
      std::cerr << "GATE: " << agg_arm.name
                << " delivered fewer ids than unmerged\n";
      ok = false;
    }
  }

  {
    std::ofstream json{"BENCH_scaling.json"};
    json << "{\n  \"experiment\": \"A18\",\n  \"subscriptions\": " << a18_subs
         << ",\n  \"arms\": [\n";
    for (std::size_t i = 0; i < arms.size(); ++i) {
      const ScalingArm& arm = arms[i];
      json << "    {\"name\": \"" << arm.name
           << "\", \"aggregated\": " << (arm.aggregated ? "true" : "false")
           << ", \"entries\": " << arm.entries
           << ", \"entries_per_sub\": " << arm.entries_per_sub
           << ", \"index_bytes_per_sub\": " << arm.index_bytes_per_sub
           << ", \"build_subs_per_sec\": " << arm.build_subs_per_sec
           << ", \"match_events_per_sec\": " << arm.match_events_per_sec
           << ", \"churn_ops_per_sec\": " << arm.churn_ops_per_sec
           << ", \"deliveries\": " << arm.deliveries
           << ", \"superset_violations\": " << arm.superset_violations << "}"
           << (i + 1 < arms.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::cout << "\nWrote BENCH_scaling.json\n";
  }

  if (!ok) return 1;
  return 0;
}
