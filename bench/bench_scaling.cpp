// Experiment A6 — the paper's scaling claims (§5.3 discussion):
//
//   "The system scales better also with the number of subscriptions since
//    by adding a few intermediate nodes, the number of subscribers can be
//    increased significantly without increasing the required computational
//    power at any node"  and  "the event system hence scales in terms of
//    message rate".
//
// Two sweeps on the paper topology:
//   (a) subscribers 50→1200 at a fixed event count — max per-node RLC must
//       stay flat or fall (more subscribers amortize the same weakened
//       filters);
//   (b) events 1k→32k at fixed subscribers — per-node LC grows linearly
//       with rate, but RLC (work relative to a centralized server doing
//       the same job) stays constant.
#include "harness.hpp"

int main() {
  using namespace cake;

  std::cout << "=== A6: Scaling sweeps (paper §5.3 discussion) ===\n\n";

  std::cout << "(a) subscriber sweep, 5000 events:\n";
  util::TextTable subs_table{{"Subscribers", "Max node RLC", "Max broker LC",
                              "Stage-1 filters (avg)", "Messages/event"}};
  for (const std::size_t subscribers : {50u, 150u, 400u, 1200u}) {
    bench::SimConfig config;
    config.stage_counts = {1, 10, 100};
    config.subscribers = subscribers;
    config.events = 5'000;
    const bench::SimResult result = bench::run_biblio_sim(config);

    double max_rlc = 0.0, max_lc = 0.0;
    double stage1_filters = 0.0;
    std::size_t stage1_nodes = 0;
    for (const auto& load : result.broker_loads) {
      max_rlc = std::max(max_rlc, load.rlc(config.events, subscribers));
      max_lc = std::max(max_lc, load.lc());
      if (load.stage == 1) {
        stage1_filters += static_cast<double>(load.filters);
        ++stage1_nodes;
      }
    }
    subs_table.add_row(
        {std::to_string(subscribers), util::format_number(max_rlc),
         util::format_number(max_lc),
         util::format_number(stage1_filters / double(stage1_nodes)),
         util::format_number(static_cast<double>(result.network_messages) /
                             static_cast<double>(config.events))});
  }
  subs_table.print(std::cout);

  std::cout << "\n(b) event-rate sweep, 150 subscribers:\n";
  util::TextTable events_table{{"Events", "Max broker LC", "Max node RLC",
                                "Global RLC", "Deliveries"}};
  for (const std::size_t events : {1'000u, 4'000u, 16'000u, 32'000u}) {
    bench::SimConfig config;
    config.stage_counts = {1, 10, 100};
    config.subscribers = 150;
    config.events = events;
    const bench::SimResult result = bench::run_biblio_sim(config);

    double max_rlc = 0.0, max_lc = 0.0;
    for (const auto& load : result.broker_loads) {
      max_rlc = std::max(max_rlc, load.rlc(events, config.subscribers));
      max_lc = std::max(max_lc, load.lc());
    }
    events_table.add_row({std::to_string(events), util::format_number(max_lc),
                          util::format_number(max_rlc),
                          util::format_number(metrics::global_rlc(result.summaries())),
                          std::to_string(result.deliveries)});
  }
  events_table.print(std::cout);

  std::cout << "\n(c) subscriptions-per-subscriber sweep, 150 subscribers, "
               "5000 events (paper: millions of subscriptions over hundreds "
               "of thousands of subscribers):\n";
  util::TextTable density_table{{"Subs/subscriber", "Total subscriptions",
                                 "Stage-1 filters", "Max broker LC",
                                 "Messages"}};
  for (const std::size_t density : {1u, 2u, 4u, 8u}) {
    bench::SimConfig config;
    config.stage_counts = {1, 10, 100};
    config.subscribers = 150;
    config.events = 5'000;
    config.subscriptions_per_subscriber = density;
    const bench::SimResult result = bench::run_biblio_sim(config);
    std::size_t stage1_filters = 0;
    double max_lc = 0.0;
    for (const auto& load : result.broker_loads) {
      if (load.stage == 1) stage1_filters += load.filters;
      max_lc = std::max(max_lc, load.lc());
    }
    density_table.add_row({std::to_string(density),
                           std::to_string(150 * density),
                           std::to_string(stage1_filters),
                           util::format_number(max_lc),
                           std::to_string(result.network_messages)});
  }
  density_table.print(std::cout);

  std::cout << "\nShape check: (a) max RLC flat-or-falling as subscribers "
               "grow; (b) LC linear in the event rate while RLC stays "
               "constant; (c) broker filter tables grow sublinearly in the "
               "subscription count (clustering + weakened-form dedup).\n";
  return 0;
}
