// Experiment A13 — trace pipeline overhead on the hot publish path.
//
// Four arms over the same seeded {1, 4, 16} biblio overlay, timed around
// the publish + drain phase only (setup and joins excluded):
//
//   off        trace.enabled = false — no Tracer object exists; endpoints
//              and brokers see a null tracer pointer (the zero-cost claim);
//   unsampled  Tracer exists but the period never samples: each publish
//              pays one hash + branch, no spans, no wire growth;
//   1/64       production-shaped sampling;
//   every      sample_period = 1 — the test-oracle configuration.
//
// Arms run interleaved (off, unsampled, 1/64, every, off, ...) and each
// keeps its best-of-R throughput, so ambient machine noise hits all arms
// evenly instead of whichever ran last. The regression guard lives in
// tests/test_trace.cpp (TraceOverhead); this binary prints the curve.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "cake/routing/overlay.hpp"
#include "cake/util/table.hpp"
#include "cake/workload/generators.hpp"

namespace {

using namespace cake;

constexpr std::size_t kSubscribers = 40;
constexpr int kRounds = 5;

struct Arm {
  const char* name;
  bool enabled;
  std::uint64_t sample_period;
  double best_events_per_sec = 0.0;
  std::uint64_t spans = 0;
  std::uint64_t wire_bytes = 0;
};

void run_arm(Arm& arm, std::size_t events, std::uint64_t seed) {
  routing::OverlayConfig config;
  config.stage_counts = {1, 4, 16};
  config.seed = seed;
  config.trace.enabled = arm.enabled;
  config.trace.sample_period = arm.sample_period;
  config.trace.ring_capacity = events * 8;
  routing::Overlay overlay{config};

  auto& publisher = overlay.add_publisher();
  publisher.advertise(workload::BiblioGenerator::schema());
  overlay.run();

  workload::BiblioGenerator gen{{}, seed};
  for (std::size_t i = 0; i < kSubscribers; ++i) {
    overlay.add_subscriber().subscribe(gen.next_subscription(i % 3), {});
    overlay.run();
  }

  // Pre-generate the stream so the generator's cost is outside the clock.
  std::vector<event::EventImage> stream;
  stream.reserve(events);
  for (std::size_t e = 0; e < events; ++e) stream.push_back(gen.next_event());

  const auto start = std::chrono::steady_clock::now();
  for (auto& image : stream) publisher.publish(std::move(image));
  overlay.run();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  arm.best_events_per_sec =
      std::max(arm.best_events_per_sec, double(events) / elapsed.count());
  if (overlay.tracer() != nullptr)
    arm.spans = overlay.tracer()->stats().spans_emitted;
  arm.wire_bytes = overlay.network().total_bytes();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t events = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                      : 20'000;
  if (events == 0) {
    std::cerr << "usage: " << argv[0] << " [events > 0]\n";
    return 2;
  }
  workload::ensure_types_registered();

  Arm arms[] = {
      {"off", false, 1},
      {"unsampled", true, std::numeric_limits<std::uint64_t>::max()},
      {"1/64", true, 64},
      {"every", true, 1},
  };

  std::cout << "=== A13: Trace pipeline overhead on the publish path ===\n"
            << "{1,4,16} overlay, " << kSubscribers << " subscribers, "
            << events << " events, best of " << kRounds
            << " interleaved rounds\n\n";

  for (int round = 0; round < kRounds; ++round)
    for (Arm& arm : arms) run_arm(arm, events, 2002 + round);

  const double baseline = arms[0].best_events_per_sec;
  util::TextTable table{
      {"Tracing", "Events/s", "vs off", "Spans", "Wire bytes"}};
  for (const Arm& arm : arms) {
    table.add_row({arm.name, util::format_number(arm.best_events_per_sec),
                   util::format_number(arm.best_events_per_sec / baseline),
                   std::to_string(arm.spans), std::to_string(arm.wire_bytes)});
  }
  table.print(std::cout);

  // The claim the regression test pins: a disabled or unsampled tracer is
  // within noise of no tracer at all.
  std::cout << "\nunsampled/off throughput ratio: "
            << util::format_number(arms[1].best_events_per_sec / baseline)
            << " (expected ~1.0; 'every' pays span emission + 1 varint per "
               "EventMsg hop)\n";
  return 0;
}
