// Experiments A12 + A16 — concurrent publish throughput of LocalBus.
//
// Measures N publisher threads pushing events through one bus, comparing
// the sharded matching engine (per-shard reader–writer snapshot, the
// default) against the pre-sharding baseline that funnels every match()
// through one global mutex (BusOptions::serialize_matching).
//
// Two workloads:
//   * multi-type — each publisher owns a distinct event class, so in the
//     sharded bus the threads (almost) never touch the same shard;
//   * same-type  — every publisher publishes Stock, so all threads take
//     the SAME shard's lock, but only in shared mode: matching still
//     proceeds concurrently on per-thread scratch state.
//
// Expected shape: the serialized bus is flat (or degrades) as threads are
// added; the sharded bus scales with cores. On a single-core host both
// columns are flat — the speedup column is only meaningful with
// hardware_concurrency ≥ the thread count.
//
// A16 (threaded transport scaling) runs the same multi-type workload
// through the batched event pipeline on a ThreadedTransport, sweeping the
// worker count: producers stage refcounted events, lanes drain batches,
// matching runs on the workers. The delivery count is differential-gated
// against the direct sharded bus on an identical event stream — the
// pipeline is a routing layer, so it must deliver bit-for-bit the same
// multiset of (filter, event) hits. Writes BENCH_threaded.json for the CI
// perf-trend gate; exits 1 on any delivery mismatch.
// A19 (threaded overlay data plane) drives a full multi-broker hierarchy —
// publishers → root → inner stage → leaves → subscribers — end-to-end on
// ThreadedTransport, sweeping workers 1/2/4/8. Every arm's per-subscriber
// delivery multiset is pinned against a Sim-backend control run of the
// same seed (exit 1 on divergence), and on multi-core hosts the 4-worker
// arm must clear 1.5x the single-worker arm. Writes BENCH_overlay.json.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "cake/event/event.hpp"
#include "cake/metrics/metrics.hpp"
#include "cake/routing/overlay.hpp"
#include "cake/runtime/local_bus.hpp"
#include "cake/runtime/pipeline.hpp"
#include "cake/runtime/threaded.hpp"
#include "cake/util/table.hpp"
#include "cake/workload/generators.hpp"
#include "cake/workload/types.hpp"

namespace {

// Counting operator-new interposer for the allocs/event column of A19.
// One relaxed fetch_add per allocation; the measured hot paths are
// (near-)allocation-free, so the tax on the throughput columns is noise.
std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t allocs() { return g_allocs.load(std::memory_order_relaxed); }

void* bench_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return bench_alloc(size); }
void* operator new[](std::size_t size) { return bench_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace cake;
using filter::FilterBuilder;
using filter::Op;
using value::Value;

constexpr std::size_t kShards = 16;
constexpr int kFiltersPerType = 200;

// The four classes publishers cycle through; hashed to distinct shards
// with high probability at kShards = 16.
const char* const kTypes[] = {"Stock", "Auction", "CarAuction", "Publication"};

void populate(runtime::LocalBus& bus, std::atomic<std::uint64_t>& delivered) {
  const auto handler = [&delivered](const event::Event&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  };
  for (const char* type : kTypes) {
    for (int i = 0; i < kFiltersPerType; ++i) {
      // Price/year bounds arranged so a small fraction of filters match
      // each event — realistic selective subscriptions, non-trivial
      // counting work per match call.
      if (std::string{type} == "Publication") {
        bus.subscribe(FilterBuilder{type}
                          .where("year", Op::Le, Value{std::int64_t{1900 + i}})
                          .build(),
                      handler);
      } else {
        bus.subscribe(FilterBuilder{type}
                          .where("price", Op::Lt, Value{double(i)})
                          .build(),
                      handler);
      }
    }
  }
}

void publish_one(runtime::LocalBus& bus, const char* type, int i) {
  const double price = double(i % kFiltersPerType);
  switch (type[0]) {
    case 'S':
      bus.publish(workload::Stock{"SYM", price, i});
      break;
    case 'A':
      bus.publish(workload::Auction{"lot", price});
      break;
    case 'C':
      bus.publish(workload::CarAuction{price, 5, 4});
      break;
    default:
      bus.publish(workload::Publication{1900 + (i % kFiltersPerType), "ICDCS",
                                        "author", "title"});
      break;
  }
}

struct Run {
  double events_per_sec = 0.0;
  std::uint64_t delivered = 0;
};

Run run_workload(bool serialized, bool multi_type, int threads,
                 int events_per_thread,
                 std::vector<index::ShardStats>* shards_out = nullptr) {
  runtime::BusOptions options;
  options.engine = index::Engine::Counting;
  options.shards = kShards;
  options.serialize_matching = serialized;
  runtime::LocalBus bus{options};
  std::atomic<std::uint64_t> delivered{0};
  populate(bus, delivered);

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> publishers;
  publishers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    publishers.emplace_back([&, t] {
      const char* type = multi_type ? kTypes[t % 4] : "Stock";
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < events_per_thread; ++i) publish_one(bus, type, i);
    });
  }
  while (ready.load(std::memory_order_acquire) != threads)
    std::this_thread::yield();

  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : publishers) thread.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  if (shards_out != nullptr) *shards_out = bus.shard_stats();
  const double total = double(threads) * double(events_per_thread);
  return Run{total / elapsed.count(), delivered.load()};
}

/// Refcounted flavour of publish_one for the pipeline arm — same (type, i)
/// stream, so deliveries must match the direct arms exactly.
runtime::EventPtr make_event(const char* type, int i) {
  const double price = double(i % kFiltersPerType);
  switch (type[0]) {
    case 'S':
      return std::make_shared<const workload::Stock>("SYM", price, i);
    case 'A':
      return std::make_shared<const workload::Auction>("lot", price);
    case 'C':
      return std::make_shared<const workload::CarAuction>(price, 5, 4);
    default:
      return std::make_shared<const workload::Publication>(
          1900 + (i % kFiltersPerType), "ICDCS", "author", "title");
  }
}

/// Scoped CAKE_THREADS pin so the sweep really runs `workers` lanes even
/// on hosts with fewer cores (the bench is explicit opt-in load).
class ThreadsEnvPin {
public:
  explicit ThreadsEnvPin(std::size_t workers) {
    if (const char* old = std::getenv("CAKE_THREADS")) previous_ = old;
    ::setenv("CAKE_THREADS", std::to_string(workers).c_str(), 1);
  }
  ~ThreadsEnvPin() {
    if (previous_.empty())
      ::unsetenv("CAKE_THREADS");
    else
      ::setenv("CAKE_THREADS", previous_.c_str(), 1);
  }

private:
  std::string previous_;
};

struct ThreadedRun {
  std::size_t workers = 0;
  int producers = 0;
  double events_per_sec = 0.0;
  std::uint64_t delivered = 0;
};

// A16: producers → Producer staging handles → transport lanes → shards.
ThreadedRun run_pipeline(std::size_t workers, int producers,
                         int events_per_thread) {
  const ThreadsEnvPin pin{workers};
  runtime::ThreadedTransport transport{
      runtime::ThreadedOptions{.workers = workers}};

  runtime::BusOptions options;
  options.engine = index::Engine::Counting;
  options.shards = kShards;
  runtime::LocalBus bus{options};
  std::atomic<std::uint64_t> delivered{0};
  populate(bus, delivered);

  runtime::EventPipeline pipeline{transport, bus, {}};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (int t = 0; t < producers; ++t) {
    threads.emplace_back([&, t] {
      const char* type = kTypes[t % 4];
      runtime::EventPipeline::Producer producer{pipeline};
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < events_per_thread; ++i)
        producer.publish(make_event(type, i));
      // ~Producer flushes the partial tail batches.
    });
  }
  while (ready.load(std::memory_order_acquire) != producers)
    std::this_thread::yield();

  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  pipeline.drain();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  const double total = double(producers) * double(events_per_thread);
  return ThreadedRun{transport.workers(), producers, total / elapsed.count(),
                     delivered.load()};
}

// ---- A19: broker overlay on ThreadedTransport -------------------------

constexpr std::size_t kOverlayPublishers = 4;
constexpr std::size_t kOverlaySubscribers = 8;
const char* const kOverlaySymbols[] = {"AAA", "BBB", "CCC", "DDD"};

/// Order-independent summary of one subscriber's deliveries: count plus a
/// commutative hash over the unique per-event volume tag. Two runs saw the
/// same multiset iff their digests match.
struct SubDigest {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t hash = 0;

  void add(std::uint64_t volume) noexcept {
    ++count;
    sum += volume;
    // Commutative mix (xor of a bijective scramble): order-insensitive,
    // collision-resistant enough for a conformance pin.
    std::uint64_t x = volume + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    hash ^= x ^ (x >> 31);
  }
  bool operator==(const SubDigest&) const = default;
};

struct OverlayRun {
  std::size_t workers = 0;
  double events_per_sec = 0.0;
  std::uint64_t delivered = 0;
  double allocs_per_event = 0.0;
  std::vector<SubDigest> digests;
};

OverlayRun run_overlay(routing::OverlayBackend backend, std::size_t workers,
                       int events) {
  const ThreadsEnvPin pin{workers};
  routing::OverlayConfig config;
  config.stage_counts = {1, 2, 4};
  config.backend = backend;
  config.threaded.workers = workers;
  // Real-clock safety: push every periodic deadline past the run so the
  // data plane is the only thing the wall clock sees (the lease machinery
  // is pinned by the sim-backend chaos suites).
  config.broker.ttl = 3'600'000'000;
  config.broker.renew_interval = 1'800'000'000;
  config.broker.reap_interval = 1'800'000'000;
  config.subscriber.renew_interval = 1'800'000'000;
  config.subscriber.auto_renew = false;
  config.link.heartbeat_interval = 1'800'000'000;
  routing::Overlay overlay{config};

  std::vector<routing::PublisherNode*> pubs;
  for (std::size_t p = 0; p < kOverlayPublishers; ++p) {
    routing::PublisherNode& pub = overlay.add_publisher();
    overlay.run_on(pub.id(), [&pub] {
      pub.advertise(workload::StockGenerator::schema());
    });
    pubs.push_back(&pub);
  }
  overlay.run();

  // 8 subscribers, 2 per symbol at different selectivities: every event
  // matches a known subset, and the unique volume tag keys the multiset.
  auto digests = std::make_unique<SubDigest[]>(kOverlaySubscribers);
  for (std::size_t s = 0; s < kOverlaySubscribers; ++s) {
    routing::SubscriberNode& sub = overlay.add_subscriber();
    SubDigest* digest = &digests[s];
    overlay.run_on(sub.id(), [&sub, digest, s] {
      sub.subscribe(
          FilterBuilder{"Stock"}
              .where("symbol", Op::Eq, Value{kOverlaySymbols[s % 4]})
              .where("price", Op::Lt, Value{s < 4 ? 50.0 : 101.0})
              .build(),
          [digest](const event::EventImage& e) {
            digest->add(static_cast<std::uint64_t>(
                e.find("volume")->as_int()));
          });
    });
  }
  overlay.run();  // join handshakes settle

  // Each publisher loops on its own lane: the injection is one task per
  // publisher, so the measured window is pure data-plane work.
  const std::uint64_t allocs_before = allocs();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t p = 0; p < kOverlayPublishers; ++p) {
    routing::PublisherNode* pub = pubs[p];
    overlay.post_on(pub->id(), [pub, p, events] {
      for (int i = static_cast<int>(p); i < events;
           i += static_cast<int>(kOverlayPublishers)) {
        pub->publish(event::image_of(workload::Stock{
            kOverlaySymbols[i % 4], double((i * 7) % 101), i}));
      }
    });
  }
  overlay.run();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  const std::uint64_t allocs_after = allocs();

  // Post-drain reads are quiescence-exact: the foreground handshake in
  // drain() orders every lane's writes before this thread's reads.
  OverlayRun run;
  run.workers = workers;
  run.events_per_sec = double(events) / elapsed.count();
  run.allocs_per_event =
      double(allocs_after - allocs_before) / double(events);
  run.digests.assign(digests.get(), digests.get() + kOverlaySubscribers);
  for (const SubDigest& d : run.digests) run.delivered += d.count;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const int events_per_thread = argc > 1 ? std::atoi(argv[1]) : 20'000;
  if (events_per_thread <= 0) {
    std::cerr << "usage: " << argv[0]
              << " [events_per_thread > 0]  (got '" << argv[1] << "')\n";
    return 2;
  }
  workload::ensure_types_registered();

  std::cout << "=== A12: Concurrent publish throughput, sharded vs "
               "serialized matching ===\n"
            << "4 event classes x " << kFiltersPerType << " filters, "
            << kShards << " shards, " << events_per_thread
            << " events/thread (hardware_concurrency = "
            << std::thread::hardware_concurrency() << ")\n\n";

  double speedup_at_4 = 0.0;
  for (const bool multi_type : {true, false}) {
    std::cout << (multi_type
                      ? "-- Multi-type workload (publishers on distinct "
                        "classes, distinct shards) --\n"
                      : "-- Same-type workload (all publishers on Stock, one "
                        "shared shard) --\n");
    util::TextTable table{{"Threads", "Serialized ev/s", "Sharded ev/s",
                           "Speedup", "Deliveries"}};
    for (const int threads : {1, 2, 4, 8}) {
      const Run serial =
          run_workload(/*serialized=*/true, multi_type, threads,
                       events_per_thread);
      std::vector<index::ShardStats> shards;
      const Run sharded = run_workload(/*serialized=*/false, multi_type,
                                       threads, events_per_thread, &shards);
      const double speedup = sharded.events_per_sec / serial.events_per_sec;
      if (multi_type && threads == 4) speedup_at_4 = speedup;
      table.add_row({std::to_string(threads),
                     util::format_number(serial.events_per_sec),
                     util::format_number(sharded.events_per_sec),
                     util::format_number(speedup),
                     std::to_string(sharded.delivered)});
      if (serial.delivered != sharded.delivered) {
        std::cout << "DELIVERY MISMATCH: serialized=" << serial.delivered
                  << " sharded=" << sharded.delivered << "\n";
        return 1;
      }
      if (!multi_type && threads == 4) {
        std::cout << "shard imbalance at 4 threads: "
                  << util::format_number(metrics::shard_imbalance(shards))
                  << " (same-type: all traffic on one shard is expected)\n";
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "multi-type speedup at 4 publisher threads: "
            << util::format_number(speedup_at_4) << "x\n";

  // ---- A16: threaded transport scaling --------------------------------
  std::cout << "\n=== A16: Batched pipeline over ThreadedTransport ===\n"
            << "multi-type workload, batch 32, workers = producers\n\n";
  util::TextTable threaded_table{
      {"Workers", "Pipeline ev/s", "Direct sharded ev/s", "Delivered"}};
  std::vector<ThreadedRun> runs;
  bool deliveries_ok = true;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    const int producers = static_cast<int>(workers);
    const ThreadedRun run =
        run_pipeline(workers, producers, events_per_thread);
    // Differential delivery gate: the direct sharded bus on the identical
    // (type, i) stream is the oracle for what the pipeline must deliver.
    const Run direct = run_workload(/*serialized=*/false, /*multi_type=*/true,
                                    producers, events_per_thread);
    threaded_table.add_row({std::to_string(run.workers),
                            util::format_number(run.events_per_sec),
                            util::format_number(direct.events_per_sec),
                            std::to_string(run.delivered)});
    if (run.delivered != direct.delivered) {
      std::cout << "DELIVERY MISMATCH at " << workers
                << " workers: pipeline=" << run.delivered
                << " direct=" << direct.delivered << "\n";
      deliveries_ok = false;
    }
    runs.push_back(run);
  }
  threaded_table.print(std::cout);

  const double speedup_4v1 =
      runs.size() >= 3 && runs[0].events_per_sec > 0.0
          ? runs[2].events_per_sec / runs[0].events_per_sec
          : 0.0;
  std::cout << "\npipeline speedup, 4 workers vs 1: "
            << util::format_number(speedup_4v1)
            << "x (hardware_concurrency = "
            << std::thread::hardware_concurrency() << ")\n";
  // Scaling re-gate: the flatline this caught traced to cross-lane shared
  // state on the per-event path (the interner's read lock, the bus's
  // shared stat counters), since made wait-free / per-lane. Only enforced
  // where 4 lanes can actually run in parallel.
  if (std::thread::hardware_concurrency() >= 4 && speedup_4v1 < 1.3) {
    std::cout << "PIPELINE SCALING REGRESSION: 4-worker speedup "
              << util::format_number(speedup_4v1)
              << "x < 1.3x on a multi-core host\n";
    deliveries_ok = false;
  }

  {
    std::ofstream json{"BENCH_threaded.json"};
    json << "{\n  \"experiment\": \"A16\",\n  \"events_per_thread\": "
         << events_per_thread << ",\n  \"arms\": [\n";
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const ThreadedRun& run = runs[i];
      json << "    {\"workers\": " << run.workers
           << ", \"producers\": " << run.producers
           << ", \"events_per_sec\": " << run.events_per_sec
           << ", \"delivered\": " << run.delivered << "}"
           << (i + 1 < runs.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"speedup_4_workers_vs_1\": " << speedup_4v1
         << ",\n  \"deliveries_ok\": " << (deliveries_ok ? "true" : "false")
         << "\n}\n";
    std::cout << "Wrote BENCH_threaded.json\n";
  }

  // ---- A19: broker overlay on ThreadedTransport -----------------------
  std::cout << "\n=== A19: Broker overlay end-to-end on ThreadedTransport ===\n"
            << "stages {1,2,4}, " << kOverlayPublishers << " publishers, "
            << kOverlaySubscribers << " subscribers, " << events_per_thread
            << " events total\n\n";

  // One Sim-backend control run pins the semantics: every threaded arm
  // must reproduce its per-subscriber delivery multiset exactly.
  const OverlayRun sim_control =
      run_overlay(routing::OverlayBackend::Sim, 1, events_per_thread);

  util::TextTable overlay_table{
      {"Workers", "Overlay ev/s", "Delivered", "Allocs/event", "Multiset"}};
  std::vector<OverlayRun> overlay_runs;
  bool overlay_ok = true;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    const OverlayRun run =
        run_overlay(routing::OverlayBackend::Threaded, workers,
                    events_per_thread);
    const bool multiset_ok = run.digests == sim_control.digests;
    overlay_ok = overlay_ok && multiset_ok;
    overlay_table.add_row({std::to_string(run.workers),
                           util::format_number(run.events_per_sec),
                           std::to_string(run.delivered),
                           util::format_number(run.allocs_per_event),
                           multiset_ok ? "== sim" : "DIVERGED"});
    if (!multiset_ok) {
      std::cout << "MULTISET MISMATCH at " << workers
                << " workers: threaded delivered " << run.delivered
                << ", sim control delivered " << sim_control.delivered
                << "\n";
    }
    overlay_runs.push_back(run);
  }
  overlay_table.print(std::cout);

  const double overlay_speedup_4v1 =
      overlay_runs.size() >= 3 && overlay_runs[0].events_per_sec > 0.0
          ? overlay_runs[2].events_per_sec / overlay_runs[0].events_per_sec
          : 0.0;
  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "\noverlay speedup, 4 workers vs 1: "
            << util::format_number(overlay_speedup_4v1)
            << "x (sim control: "
            << util::format_number(sim_control.events_per_sec)
            << " ev/s; hardware_concurrency = " << hw << ")\n";
  // The scaling gate only means something when 4 lanes can actually run in
  // parallel; single-core hosts still run the sweep for the multiset pin.
  bool overlay_scaling_ok = true;
  if (hw >= 4 && overlay_speedup_4v1 < 1.5) {
    overlay_scaling_ok = false;
    std::cout << "OVERLAY SCALING REGRESSION: 4-worker speedup "
              << util::format_number(overlay_speedup_4v1)
              << "x < 1.5x on a multi-core host\n";
  }

  {
    std::ofstream json{"BENCH_overlay.json"};
    json << "{\n  \"experiment\": \"A19\",\n  \"events\": "
         << events_per_thread << ",\n  \"arms\": [\n";
    for (std::size_t i = 0; i < overlay_runs.size(); ++i) {
      const OverlayRun& run = overlay_runs[i];
      json << "    {\"workers\": " << run.workers
           << ", \"events_per_sec\": " << run.events_per_sec
           << ", \"delivered\": " << run.delivered
           << ", \"allocs_per_event\": " << run.allocs_per_event << "}"
           << (i + 1 < overlay_runs.size() ? "," : "") << "\n";
    }
    json << "  ],\n  \"sim_control\": {\"events_per_sec\": "
         << sim_control.events_per_sec
         << ", \"delivered\": " << sim_control.delivered
         << "},\n  \"speedup_4_workers_vs_1\": " << overlay_speedup_4v1
         << ",\n  \"multiset_ok\": " << (overlay_ok ? "true" : "false")
         << ",\n  \"scaling_ok\": " << (overlay_scaling_ok ? "true" : "false")
         << "\n}\n";
    std::cout << "Wrote BENCH_overlay.json\n";
  }
  return deliveries_ok && overlay_ok && overlay_scaling_ok ? 0 : 1;
}
