// Experiment A12 — concurrent publish throughput of LocalBus.
//
// Measures N publisher threads pushing events through one bus, comparing
// the sharded matching engine (per-shard reader–writer snapshot, the
// default) against the pre-sharding baseline that funnels every match()
// through one global mutex (BusOptions::serialize_matching).
//
// Two workloads:
//   * multi-type — each publisher owns a distinct event class, so in the
//     sharded bus the threads (almost) never touch the same shard;
//   * same-type  — every publisher publishes Stock, so all threads take
//     the SAME shard's lock, but only in shared mode: matching still
//     proceeds concurrently on per-thread scratch state.
//
// Expected shape: the serialized bus is flat (or degrades) as threads are
// added; the sharded bus scales with cores. On a single-core host both
// columns are flat — the speedup column is only meaningful with
// hardware_concurrency ≥ the thread count.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "cake/metrics/metrics.hpp"
#include "cake/runtime/local_bus.hpp"
#include "cake/util/table.hpp"
#include "cake/workload/types.hpp"

namespace {

using namespace cake;
using filter::FilterBuilder;
using filter::Op;
using value::Value;

constexpr std::size_t kShards = 16;
constexpr int kFiltersPerType = 200;

// The four classes publishers cycle through; hashed to distinct shards
// with high probability at kShards = 16.
const char* const kTypes[] = {"Stock", "Auction", "CarAuction", "Publication"};

void populate(runtime::LocalBus& bus, std::atomic<std::uint64_t>& delivered) {
  const auto handler = [&delivered](const event::Event&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  };
  for (const char* type : kTypes) {
    for (int i = 0; i < kFiltersPerType; ++i) {
      // Price/year bounds arranged so a small fraction of filters match
      // each event — realistic selective subscriptions, non-trivial
      // counting work per match call.
      if (std::string{type} == "Publication") {
        bus.subscribe(FilterBuilder{type}
                          .where("year", Op::Le, Value{std::int64_t{1900 + i}})
                          .build(),
                      handler);
      } else {
        bus.subscribe(FilterBuilder{type}
                          .where("price", Op::Lt, Value{double(i)})
                          .build(),
                      handler);
      }
    }
  }
}

void publish_one(runtime::LocalBus& bus, const char* type, int i) {
  const double price = double(i % kFiltersPerType);
  switch (type[0]) {
    case 'S':
      bus.publish(workload::Stock{"SYM", price, i});
      break;
    case 'A':
      bus.publish(workload::Auction{"lot", price});
      break;
    case 'C':
      bus.publish(workload::CarAuction{price, 5, 4});
      break;
    default:
      bus.publish(workload::Publication{1900 + (i % kFiltersPerType), "ICDCS",
                                        "author", "title"});
      break;
  }
}

struct Run {
  double events_per_sec = 0.0;
  std::uint64_t delivered = 0;
};

Run run_workload(bool serialized, bool multi_type, int threads,
                 int events_per_thread,
                 std::vector<index::ShardStats>* shards_out = nullptr) {
  runtime::BusOptions options;
  options.engine = index::Engine::Counting;
  options.shards = kShards;
  options.serialize_matching = serialized;
  runtime::LocalBus bus{options};
  std::atomic<std::uint64_t> delivered{0};
  populate(bus, delivered);

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> publishers;
  publishers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    publishers.emplace_back([&, t] {
      const char* type = multi_type ? kTypes[t % 4] : "Stock";
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < events_per_thread; ++i) publish_one(bus, type, i);
    });
  }
  while (ready.load(std::memory_order_acquire) != threads)
    std::this_thread::yield();

  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& thread : publishers) thread.join();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  if (shards_out != nullptr) *shards_out = bus.shard_stats();
  const double total = double(threads) * double(events_per_thread);
  return Run{total / elapsed.count(), delivered.load()};
}

}  // namespace

int main(int argc, char** argv) {
  const int events_per_thread = argc > 1 ? std::atoi(argv[1]) : 20'000;
  if (events_per_thread <= 0) {
    std::cerr << "usage: " << argv[0]
              << " [events_per_thread > 0]  (got '" << argv[1] << "')\n";
    return 2;
  }
  workload::ensure_types_registered();

  std::cout << "=== A12: Concurrent publish throughput, sharded vs "
               "serialized matching ===\n"
            << "4 event classes x " << kFiltersPerType << " filters, "
            << kShards << " shards, " << events_per_thread
            << " events/thread (hardware_concurrency = "
            << std::thread::hardware_concurrency() << ")\n\n";

  double speedup_at_4 = 0.0;
  for (const bool multi_type : {true, false}) {
    std::cout << (multi_type
                      ? "-- Multi-type workload (publishers on distinct "
                        "classes, distinct shards) --\n"
                      : "-- Same-type workload (all publishers on Stock, one "
                        "shared shard) --\n");
    util::TextTable table{{"Threads", "Serialized ev/s", "Sharded ev/s",
                           "Speedup", "Deliveries"}};
    for (const int threads : {1, 2, 4, 8}) {
      const Run serial =
          run_workload(/*serialized=*/true, multi_type, threads,
                       events_per_thread);
      std::vector<index::ShardStats> shards;
      const Run sharded = run_workload(/*serialized=*/false, multi_type,
                                       threads, events_per_thread, &shards);
      const double speedup = sharded.events_per_sec / serial.events_per_sec;
      if (multi_type && threads == 4) speedup_at_4 = speedup;
      table.add_row({std::to_string(threads),
                     util::format_number(serial.events_per_sec),
                     util::format_number(sharded.events_per_sec),
                     util::format_number(speedup),
                     std::to_string(sharded.delivered)});
      if (serial.delivered != sharded.delivered) {
        std::cout << "DELIVERY MISMATCH: serialized=" << serial.delivered
                  << " sharded=" << sharded.delivered << "\n";
        return 1;
      }
      if (!multi_type && threads == 4) {
        std::cout << "shard imbalance at 4 threads: "
                  << util::format_number(metrics::shard_imbalance(shards))
                  << " (same-type: all traffic on one shard is expected)\n";
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "multi-type speedup at 4 publisher threads: "
            << util::format_number(speedup_at_4) << "x\n";
  return 0;
}
