// Experiment A4 — microbenchmarks of the filtering-cost tradeoffs the
// paper discusses in §2.2/§3.4:
//
//   * matching throughput vs table size for the naive Fig. 6 loop and the
//     counting index ("efficient indexing and matching techniques");
//   * the reflective image-extraction and serialization costs that typed
//     events add (the price of event safety, paid once per event at the
//     edge rather than per hop);
//   * filter weakening and covering checks (the control-plane costs).
//
// Expected shape: counting-index matching grows sublinearly with the
// number of filters while the naive loop grows linearly; extraction and
// (de)serialization sit in the sub-microsecond range that makes one-time
// transformation at the producer edge cheap.
#include <benchmark/benchmark.h>

#include "cake/baseline/baseline.hpp"
#include "cake/index/index.hpp"
#include "cake/runtime/local_bus.hpp"
#include "cake/util/regex.hpp"
#include "cake/weaken/weaken.hpp"
#include "cake/workload/generators.hpp"

namespace {

using namespace cake;

workload::BiblioGenerator make_generator() {
  workload::ensure_types_registered();
  return workload::BiblioGenerator{{}, 42};
}

void fill_index(index::MatchIndex& idx, std::size_t filters) {
  workload::BiblioGenerator gen = make_generator();
  for (std::size_t i = 0; i < filters; ++i) idx.add(gen.next_subscription());
}

void BM_MatchNaive(benchmark::State& state) {
  index::NaiveTable idx{reflect::TypeRegistry::global()};
  fill_index(idx, static_cast<std::size_t>(state.range(0)));
  workload::BiblioGenerator gen = make_generator();
  std::vector<event::EventImage> events;
  for (int i = 0; i < 64; ++i) events.push_back(gen.next_event());
  std::vector<index::FilterId> out;
  std::size_t i = 0;
  for (auto _ : state) {
    idx.match(events[i++ % events.size()], out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MatchNaive)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MatchCounting(benchmark::State& state) {
  index::CountingIndex idx{reflect::TypeRegistry::global()};
  fill_index(idx, static_cast<std::size_t>(state.range(0)));
  workload::BiblioGenerator gen = make_generator();
  std::vector<event::EventImage> events;
  for (int i = 0; i < 64; ++i) events.push_back(gen.next_event());
  std::vector<index::FilterId> out;
  std::size_t i = 0;
  for (auto _ : state) {
    idx.match(events[i++ % events.size()], out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MatchCounting)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MatchTrie(benchmark::State& state) {
  index::TrieIndex idx{reflect::TypeRegistry::global()};
  fill_index(idx, static_cast<std::size_t>(state.range(0)));
  workload::BiblioGenerator gen = make_generator();
  std::vector<event::EventImage> events;
  for (int i = 0; i < 64; ++i) events.push_back(gen.next_event());
  std::vector<index::FilterId> out;
  std::size_t i = 0;
  for (auto _ : state) {
    idx.match(events[i++ % events.size()], out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MatchTrie)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ImageExtraction(benchmark::State& state) {
  workload::ensure_types_registered();
  const workload::Stock stock{"FOO", 10.0, 32300};
  for (auto _ : state) {
    benchmark::DoNotOptimize(event::image_of(stock));
  }
}
BENCHMARK(BM_ImageExtraction);

void BM_EventToWire(benchmark::State& state) {
  workload::ensure_types_registered();
  const workload::Stock stock{"FOO", 10.0, 32300};
  for (auto _ : state) {
    benchmark::DoNotOptimize(event::to_wire(stock));
  }
}
BENCHMARK(BM_EventToWire);

void BM_WireToTypedEvent(benchmark::State& state) {
  workload::ensure_types_registered();
  const auto bytes = event::to_wire(workload::Stock{"FOO", 10.0, 32300});
  for (auto _ : state) {
    benchmark::DoNotOptimize(event::from_wire(bytes, event::EventCodec::global()));
  }
}
BENCHMARK(BM_WireToTypedEvent);

void BM_WireToImageOnly(benchmark::State& state) {
  workload::ensure_types_registered();
  const auto bytes = event::to_wire(workload::Stock{"FOO", 10.0, 32300});
  for (auto _ : state) {
    benchmark::DoNotOptimize(event::image_from_wire(bytes));
  }
}
BENCHMARK(BM_WireToImageOnly);

void BM_FilterWeakening(benchmark::State& state) {
  workload::BiblioGenerator gen = make_generator();
  const auto schema = workload::BiblioGenerator::schema();
  const auto filter = gen.next_subscription();
  std::size_t stage = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(weaken::weaken_filter(filter, schema, stage++ % 4));
  }
}
BENCHMARK(BM_FilterWeakening);

void BM_FilterCovering(benchmark::State& state) {
  workload::BiblioGenerator gen = make_generator();
  std::vector<filter::ConjunctiveFilter> filters;
  for (int i = 0; i < 64; ++i) filters.push_back(gen.next_subscription(i % 3));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(covers(filters[i % 64], filters[(i + 1) % 64],
                                    reflect::TypeRegistry::global()));
    ++i;
  }
}
BENCHMARK(BM_FilterCovering);

void BM_RegexCompile(benchmark::State& state) {
  int salt = 0;
  for (auto _ : state) {
    // Vary the pattern so the compile path runs (cached() would memoize).
    benchmark::DoNotOptimize(
        util::Regex{"title-[0-9]+-(a|b)*" + std::to_string(salt++ % 8)});
  }
}
BENCHMARK(BM_RegexCompile);

void BM_RegexMatch(benchmark::State& state) {
  const util::Regex regex{"title-[0-9]+-[0-9]+-[0-9]+-[01]"};
  const std::string subjects[] = {"title-1-2-33-0", "title-1-2-33-7",
                                  "publication-xyz", "title-9-9-9-1"};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(regex.matches(subjects[i++ % 4]));
  }
}
BENCHMARK(BM_RegexMatch);

void BM_CentralizedPublish(benchmark::State& state) {
  baseline::CentralizedServer server;
  workload::BiblioGenerator gen = make_generator();
  for (int i = 0; i < 1000; ++i)
    server.subscribe(gen.next_subscription(),
                     static_cast<baseline::SubscriberId>(i));
  std::vector<event::EventImage> events;
  for (int i = 0; i < 64; ++i) events.push_back(gen.next_event());
  std::size_t i = 0;
  for (auto _ : state) {
    server.publish(events[i++ % events.size()]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CentralizedPublish);

void BM_LocalBusPublish(benchmark::State& state) {
  runtime::LocalBus bus;
  workload::BiblioGenerator gen = make_generator();
  for (int i = 0; i < state.range(0); ++i)
    bus.subscribe(gen.next_subscription(), [](const event::Event&) {});
  workload::StockGenerator stocks{{}, 55};
  std::vector<workload::Publication> events;
  for (int i = 0; i < 64; ++i) {
    const auto image = gen.next_event();
    events.emplace_back(image.find("year")->as_int(),
                        image.find("conference")->as_string(),
                        image.find("author")->as_string(),
                        image.find("title")->as_string());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.publish(events[i++ % events.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LocalBusPublish)->Arg(100)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
