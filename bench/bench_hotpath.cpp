// Experiment A14 — zero-allocation hot path: before/after curves.
//
// Four arms over the same seeded {1, 4, 16} biblio overlay, timed around
// the publish + drain phase only, each toggling one layer of DESIGN.md §9:
//
//   baseline     owning decode at every broker, fresh frame per forward,
//                buffer pooling off — the pre-§9 cost model;
//   interned     borrowed in-place decode (symbol ids, string_views into
//                the packet), still re-encoding per forward, pooling off;
//   pooled       borrowed decode + re-encode over pooled wire buffers;
//   passthrough  borrowed decode + the original refcounted frame fanned to
//                every matching child — the full §9 configuration.
//
// Arms run interleaved and keep best-of-R throughput. A counting
// operator-new interposer (local to this binary) measures allocations per
// published event over the publish + drain phase; those counts are
// deterministic for a fixed workload and form the CI regression gate —
// wall-clock speedup is reported but not gated, since shared runners jitter.
//
// A fifth, *threaded* arm (DESIGN.md §11) runs a pre-created refcounted
// event stream through the batched pipeline on a ThreadedTransport: the
// cross-thread handoff is a refcount bump plus 1/batch of a queue push,
// so its steady-state allocs/event must stay near zero too — that is the
// claim that the §9 arithmetic survives the thread hop, and it is gated
// here alongside a differential delivery check against the direct bus.
//
// Writes BENCH_hotpath.json next to the working directory for the CI
// artifact. Exit status: 0 when the alloc gates hold, 1 otherwise.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "cake/filter/filter.hpp"
#include "cake/routing/overlay.hpp"
#include "cake/runtime/local_bus.hpp"
#include "cake/runtime/pipeline.hpp"
#include "cake/runtime/threaded.hpp"
#include "cake/util/table.hpp"
#include "cake/wire/buffer.hpp"
#include "cake/workload/generators.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

std::uint64_t news() { return g_news.load(std::memory_order_relaxed); }

void* counted_alloc(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace cake;

constexpr std::size_t kSubscribers = 40;
constexpr int kRounds = 5;

struct Arm {
  const char* name;
  bool borrowed_decode;
  routing::ForwardMode forward;
  bool pooling;
  double best_events_per_sec = 0.0;
  double allocs_per_event = 0.0;
  double bytes_per_event = 0.0;
  std::uint64_t deliveries = 0;
};

void run_arm(Arm& arm, std::size_t events, std::uint64_t seed) {
  wire::set_buffer_pooling(arm.pooling);

  routing::OverlayConfig config;
  config.stage_counts = {1, 4, 16};
  config.seed = seed;
  config.broker.borrowed_decode = arm.borrowed_decode;
  config.broker.forward = arm.forward;
  config.broker.auto_renew = false;  // static phase: measure the event path
  routing::Overlay overlay{config};

  auto& publisher = overlay.add_publisher();
  publisher.advertise(workload::BiblioGenerator::schema());
  overlay.run();

  workload::BiblioGenerator gen{{}, seed};
  for (std::size_t i = 0; i < kSubscribers; ++i) {
    overlay.add_subscriber().subscribe(gen.next_subscription(i % 3), {});
    overlay.run();
  }

  // Pre-generate the stream so the generator's cost is outside the clock,
  // and warm every scratch/pool with a prefix slice before measuring.
  std::vector<event::EventImage> stream;
  stream.reserve(events + 256);
  for (std::size_t e = 0; e < events + 256; ++e)
    stream.push_back(gen.next_event());
  for (std::size_t e = events; e < stream.size(); ++e)
    publisher.publish(std::move(stream[e]));
  overlay.run();

  const std::uint64_t bytes_before = overlay.network().total_bytes();
  const std::uint64_t news_before = news();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t e = 0; e < events; ++e)
    publisher.publish(std::move(stream[e]));
  overlay.run();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  const std::uint64_t news_after = news();

  arm.best_events_per_sec =
      std::max(arm.best_events_per_sec, double(events) / elapsed.count());
  arm.allocs_per_event = double(news_after - news_before) / double(events);
  arm.bytes_per_event =
      double(overlay.network().total_bytes() - bytes_before) / double(events);
  arm.deliveries = 0;
  for (const auto& sub : overlay.subscribers())
    arm.deliveries += sub->stats().events_delivered;
  wire::set_buffer_pooling(true);
}

struct ThreadedArm {
  double best_events_per_sec = 0.0;
  double allocs_per_event = 0.0;
  /// Same stream published directly on the bus, same interposer — the
  /// matching engine's own per-event cost (image extraction), which the
  /// transport hop must not add to.
  double direct_allocs_per_event = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t expected = 0;
  std::size_t workers = 0;
};

constexpr int kStockFilters = 200;

void populate_stock_bus(cake::runtime::LocalBus& bus,
                        std::atomic<std::uint64_t>& delivered) {
  using cake::filter::FilterBuilder;
  using cake::filter::Op;
  for (int i = 0; i < kStockFilters; ++i)
    bus.subscribe(
        FilterBuilder{"Stock"}
            .where("price", Op::Lt, cake::value::Value{double(i)})
            .build(),
        [&delivered](const cake::event::Event&) {
          delivered.fetch_add(1, std::memory_order_relaxed);
        });
}

// The threaded pipeline arm: events pre-created outside the clock (their
// construction is the publisher's cost, not the transport's), then staged
// through one Producer handle while transport workers match and deliver.
void run_threaded_arm(ThreadedArm& arm, std::size_t events) {
  using namespace cake;
  runtime::ThreadedTransport transport{};
  arm.workers = transport.workers();
  runtime::LocalBus bus;
  std::atomic<std::uint64_t> delivered{0};
  populate_stock_bus(bus, delivered);

  std::vector<runtime::EventPtr> stream;
  stream.reserve(events);
  for (std::size_t e = 0; e < events; ++e)
    stream.push_back(std::make_shared<const workload::Stock>(
        "SYM", double(e % kStockFilters), std::int64_t(e)));

  // Direct-publish oracle: the delivery gate's expected count AND the
  // alloc baseline the transport hop is measured against (warm a slice
  // first so the publishing thread's match scratch is outside the count).
  runtime::LocalBus oracle;
  std::atomic<std::uint64_t> expected{0};
  populate_stock_bus(oracle, expected);
  for (std::size_t e = 0; e < std::min<std::size_t>(events, 512); ++e)
    oracle.publish(*stream[e]);
  expected.store(0);
  const std::uint64_t direct_before = news();
  for (const auto& event : stream) oracle.publish(*event);
  arm.direct_allocs_per_event =
      double(news() - direct_before) / double(events);
  arm.expected = expected.load();

  runtime::EventPipeline pipeline{transport, bus, {}};
  {
    runtime::EventPipeline::Producer warm{pipeline};
    for (std::size_t e = 0; e < std::min<std::size_t>(events, 512); ++e)
      warm.publish(stream[e]);
  }
  pipeline.drain();
  const std::uint64_t warmed = delivered.exchange(0);
  (void)warmed;

  const std::uint64_t news_before = news();
  const auto start = std::chrono::steady_clock::now();
  {
    runtime::EventPipeline::Producer producer{pipeline};
    for (const auto& event : stream) producer.publish(event);
  }
  pipeline.drain();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  const std::uint64_t news_after = news();

  arm.best_events_per_sec =
      std::max(arm.best_events_per_sec, double(events) / elapsed.count());
  arm.allocs_per_event = double(news_after - news_before) / double(events);
  arm.delivered = delivered.load();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t events =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;
  if (events == 0) {
    std::cerr << "usage: " << argv[0] << " [events > 0]\n";
    return 2;
  }
  workload::ensure_types_registered();

  Arm arms[] = {
      {"baseline", false, routing::ForwardMode::Reencode, false},
      {"interned", true, routing::ForwardMode::Reencode, false},
      {"pooled", true, routing::ForwardMode::Reencode, true},
      {"passthrough", true, routing::ForwardMode::PassThrough, true},
  };

  std::cout << "=== A14: Zero-allocation hot path ===\n"
            << "{1,4,16} overlay, " << kSubscribers << " subscribers, "
            << events << " events, best of " << kRounds
            << " interleaved rounds\n\n";

  for (int round = 0; round < kRounds; ++round)
    for (Arm& arm : arms) run_arm(arm, events, 2002 + round);

  ThreadedArm threaded;
  for (int round = 0; round < kRounds; ++round)
    run_threaded_arm(threaded, events);

  const Arm& baseline = arms[0];
  const Arm& full = arms[3];
  util::TextTable table{{"Arm", "Events/s", "vs baseline", "Allocs/event",
                         "Bytes/event", "Deliveries"}};
  for (const Arm& arm : arms) {
    table.add_row(
        {arm.name, util::format_number(arm.best_events_per_sec),
         util::format_number(arm.best_events_per_sec /
                             baseline.best_events_per_sec),
         util::format_number(arm.allocs_per_event),
         util::format_number(arm.bytes_per_event),
         std::to_string(arm.deliveries)});
  }
  table.print(std::cout);

  const double speedup =
      full.best_events_per_sec / baseline.best_events_per_sec;
  std::cout << "\npassthrough/baseline speedup: "
            << util::format_number(speedup) << "x\n";

  std::cout << "\nthreaded pipeline arm (" << threaded.workers
            << " workers): " << util::format_number(threaded.best_events_per_sec)
            << " ev/s, " << util::format_number(threaded.allocs_per_event)
            << " allocs/event (direct publish: "
            << util::format_number(threaded.direct_allocs_per_event)
            << "), " << threaded.delivered << " deliveries\n";

  {
    std::ofstream json{"BENCH_hotpath.json"};
    json << "{\n  \"experiment\": \"A14\",\n  \"events\": " << events
         << ",\n  \"arms\": [\n";
    for (std::size_t i = 0; i < 4; ++i) {
      const Arm& arm = arms[i];
      json << "    {\"name\": \"" << arm.name
           << "\", \"events_per_sec\": " << arm.best_events_per_sec
           << ", \"allocs_per_event\": " << arm.allocs_per_event
           << ", \"bytes_per_event\": " << arm.bytes_per_event
           << ", \"deliveries\": " << arm.deliveries << "}"
           << (i + 1 < 4 ? "," : "") << "\n";
    }
    json << "  ],\n  \"speedup_passthrough_vs_baseline\": " << speedup
         << ",\n  \"threaded\": {\"workers\": " << threaded.workers
         << ", \"events_per_sec\": " << threaded.best_events_per_sec
         << ", \"allocs_per_event\": " << threaded.allocs_per_event
         << ", \"direct_allocs_per_event\": "
         << threaded.direct_allocs_per_event
         << ", \"deliveries\": " << threaded.delivered << "}\n}\n";
  }

  // Deterministic gates. Every arm must deliver the same events (the layers
  // are pure optimizations), and the alloc curve must fall monotonically to
  // (near) zero — the broker hops allocate nothing in the passthrough arm;
  // what remains is the subscriber-edge owning decode plus the publisher's
  // per-event frame, both outside §9's claim.
  bool ok = true;
  for (const Arm& arm : arms) {
    if (arm.deliveries != baseline.deliveries) {
      std::cerr << "GATE: arm '" << arm.name << "' delivered "
                << arm.deliveries << " != baseline " << baseline.deliveries
                << "\n";
      ok = false;
    }
  }
  if (!(full.allocs_per_event < 0.5 * baseline.allocs_per_event)) {
    std::cerr << "GATE: passthrough allocs/event (" << full.allocs_per_event
              << ") not < 0.5x baseline (" << baseline.allocs_per_event
              << ")\n";
    ok = false;
  }
  if (arms[1].allocs_per_event >= baseline.allocs_per_event) {
    std::cerr << "GATE: interned arm does not allocate less than baseline\n";
    ok = false;
  }
  // Threaded arm: the hot path must survive the thread hop. The transport
  // may add at most 0.25 allocs/event over publishing the same stream
  // directly — the per-batch constant (one staging vector + one task
  // closure per 32-event batch) with 4x headroom; the events themselves
  // are pre-created and only ever refcount-bumped across the hop.
  const double hop_cost =
      threaded.allocs_per_event - threaded.direct_allocs_per_event;
  if (!(hop_cost <= 0.25)) {
    std::cerr << "GATE: threaded pipeline adds " << hop_cost
              << " allocs/event over direct publish ("
              << threaded.allocs_per_event << " vs "
              << threaded.direct_allocs_per_event << "), budget 0.25\n";
    ok = false;
  }
  if (threaded.delivered != threaded.expected) {
    std::cerr << "GATE: threaded pipeline delivered " << threaded.delivered
              << " != direct-publish oracle " << threaded.expected << "\n";
    ok = false;
  }
  std::cout << (ok ? "\nA14 alloc gate: PASS\n" : "\nA14 alloc gate: FAIL\n");
  return ok ? 0 : 1;
}
