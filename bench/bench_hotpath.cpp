// Experiment A14 — zero-allocation hot path: before/after curves.
//
// Four arms over the same seeded {1, 4, 16} biblio overlay, timed around
// the publish + drain phase only, each toggling one layer of DESIGN.md §9:
//
//   baseline     owning decode at every broker, fresh frame per forward,
//                buffer pooling off — the pre-§9 cost model;
//   interned     borrowed in-place decode (symbol ids, string_views into
//                the packet), still re-encoding per forward, pooling off;
//   pooled       borrowed decode + re-encode over pooled wire buffers;
//   passthrough  borrowed decode + the original refcounted frame fanned to
//                every matching child — the full §9 configuration.
//
// Arms run interleaved and keep best-of-R throughput. A counting
// operator-new interposer (local to this binary) measures allocations per
// published event over the publish + drain phase; those counts are
// deterministic for a fixed workload and form the CI regression gate —
// wall-clock speedup is reported but not gated, since shared runners jitter.
//
// Writes BENCH_hotpath.json next to the working directory for the CI
// artifact. Exit status: 0 when the alloc gate holds, 1 otherwise.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <vector>

#include "cake/routing/overlay.hpp"
#include "cake/util/table.hpp"
#include "cake/wire/buffer.hpp"
#include "cake/workload/generators.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

std::uint64_t news() { return g_news.load(std::memory_order_relaxed); }

void* counted_alloc(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using namespace cake;

constexpr std::size_t kSubscribers = 40;
constexpr int kRounds = 5;

struct Arm {
  const char* name;
  bool borrowed_decode;
  routing::ForwardMode forward;
  bool pooling;
  double best_events_per_sec = 0.0;
  double allocs_per_event = 0.0;
  double bytes_per_event = 0.0;
  std::uint64_t deliveries = 0;
};

void run_arm(Arm& arm, std::size_t events, std::uint64_t seed) {
  wire::set_buffer_pooling(arm.pooling);

  routing::OverlayConfig config;
  config.stage_counts = {1, 4, 16};
  config.seed = seed;
  config.broker.borrowed_decode = arm.borrowed_decode;
  config.broker.forward = arm.forward;
  config.broker.auto_renew = false;  // static phase: measure the event path
  routing::Overlay overlay{config};

  auto& publisher = overlay.add_publisher();
  publisher.advertise(workload::BiblioGenerator::schema());
  overlay.run();

  workload::BiblioGenerator gen{{}, seed};
  for (std::size_t i = 0; i < kSubscribers; ++i) {
    overlay.add_subscriber().subscribe(gen.next_subscription(i % 3), {});
    overlay.run();
  }

  // Pre-generate the stream so the generator's cost is outside the clock,
  // and warm every scratch/pool with a prefix slice before measuring.
  std::vector<event::EventImage> stream;
  stream.reserve(events + 256);
  for (std::size_t e = 0; e < events + 256; ++e)
    stream.push_back(gen.next_event());
  for (std::size_t e = events; e < stream.size(); ++e)
    publisher.publish(std::move(stream[e]));
  overlay.run();

  const std::uint64_t bytes_before = overlay.network().total_bytes();
  const std::uint64_t news_before = news();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t e = 0; e < events; ++e)
    publisher.publish(std::move(stream[e]));
  overlay.run();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  const std::uint64_t news_after = news();

  arm.best_events_per_sec =
      std::max(arm.best_events_per_sec, double(events) / elapsed.count());
  arm.allocs_per_event = double(news_after - news_before) / double(events);
  arm.bytes_per_event =
      double(overlay.network().total_bytes() - bytes_before) / double(events);
  arm.deliveries = 0;
  for (const auto& sub : overlay.subscribers())
    arm.deliveries += sub->stats().events_delivered;
  wire::set_buffer_pooling(true);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t events =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;
  if (events == 0) {
    std::cerr << "usage: " << argv[0] << " [events > 0]\n";
    return 2;
  }
  workload::ensure_types_registered();

  Arm arms[] = {
      {"baseline", false, routing::ForwardMode::Reencode, false},
      {"interned", true, routing::ForwardMode::Reencode, false},
      {"pooled", true, routing::ForwardMode::Reencode, true},
      {"passthrough", true, routing::ForwardMode::PassThrough, true},
  };

  std::cout << "=== A14: Zero-allocation hot path ===\n"
            << "{1,4,16} overlay, " << kSubscribers << " subscribers, "
            << events << " events, best of " << kRounds
            << " interleaved rounds\n\n";

  for (int round = 0; round < kRounds; ++round)
    for (Arm& arm : arms) run_arm(arm, events, 2002 + round);

  const Arm& baseline = arms[0];
  const Arm& full = arms[3];
  util::TextTable table{{"Arm", "Events/s", "vs baseline", "Allocs/event",
                         "Bytes/event", "Deliveries"}};
  for (const Arm& arm : arms) {
    table.add_row(
        {arm.name, util::format_number(arm.best_events_per_sec),
         util::format_number(arm.best_events_per_sec /
                             baseline.best_events_per_sec),
         util::format_number(arm.allocs_per_event),
         util::format_number(arm.bytes_per_event),
         std::to_string(arm.deliveries)});
  }
  table.print(std::cout);

  const double speedup =
      full.best_events_per_sec / baseline.best_events_per_sec;
  std::cout << "\npassthrough/baseline speedup: "
            << util::format_number(speedup) << "x\n";

  {
    std::ofstream json{"BENCH_hotpath.json"};
    json << "{\n  \"experiment\": \"A14\",\n  \"events\": " << events
         << ",\n  \"arms\": [\n";
    for (std::size_t i = 0; i < 4; ++i) {
      const Arm& arm = arms[i];
      json << "    {\"name\": \"" << arm.name
           << "\", \"events_per_sec\": " << arm.best_events_per_sec
           << ", \"allocs_per_event\": " << arm.allocs_per_event
           << ", \"bytes_per_event\": " << arm.bytes_per_event
           << ", \"deliveries\": " << arm.deliveries << "}"
           << (i + 1 < 4 ? "," : "") << "\n";
    }
    json << "  ],\n  \"speedup_passthrough_vs_baseline\": " << speedup
         << "\n}\n";
  }

  // Deterministic gates. Every arm must deliver the same events (the layers
  // are pure optimizations), and the alloc curve must fall monotonically to
  // (near) zero — the broker hops allocate nothing in the passthrough arm;
  // what remains is the subscriber-edge owning decode plus the publisher's
  // per-event frame, both outside §9's claim.
  bool ok = true;
  for (const Arm& arm : arms) {
    if (arm.deliveries != baseline.deliveries) {
      std::cerr << "GATE: arm '" << arm.name << "' delivered "
                << arm.deliveries << " != baseline " << baseline.deliveries
                << "\n";
      ok = false;
    }
  }
  if (!(full.allocs_per_event < 0.5 * baseline.allocs_per_event)) {
    std::cerr << "GATE: passthrough allocs/event (" << full.allocs_per_event
              << ") not < 0.5x baseline (" << baseline.allocs_per_event
              << ")\n";
    ok = false;
  }
  if (arms[1].allocs_per_event >= baseline.allocs_per_event) {
    std::cerr << "GATE: interned arm does not allocate less than baseline\n";
    ok = false;
  }
  std::cout << (ok ? "\nA14 alloc gate: PASS\n" : "\nA14 alloc gate: FAIL\n");
  return ok ? 0 : 1;
}
