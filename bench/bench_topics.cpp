// Experiment A10 — the §3.4 degeneration claim: "topic-based addressing
// is a degenerated form of content-based addressing."
//
// A workload of *type-only* subscriptions (the g3/i1 shape) runs three
// ways: as topics on a group-communication bus, as content subscriptions
// on the centralized server, and as content subscriptions through the
// multi-stage overlay.
//
// Expected shape: identical delivered sets everywhere. The topic bus does
// one hash lookup per event (zero filter evaluations); the content paths
// do real matching — which is the price the paper's weakening ladder
// climbs back down once filters reach the type-only rung.
#include <iostream>

#include "cake/baseline/baseline.hpp"
#include "cake/baseline/topics.hpp"
#include "cake/routing/overlay.hpp"
#include "cake/util/table.hpp"
#include "cake/workload/generators.hpp"

int main() {
  using namespace cake;

  constexpr std::size_t kSubscribers = 90;
  constexpr std::size_t kEvents = 10'000;

  std::cout << "=== A10: Topic degeneration (paper §3.4) ===\n"
            << kSubscribers
            << " type-only subscriptions over {Stock, Auction-tree, "
               "Publication}, "
            << kEvents << " mixed events\n\n";

  workload::ensure_types_registered();
  util::Rng rng{10};
  workload::StockGenerator stocks{{}, 1};
  workload::AuctionGenerator auctions{{}, 2};
  workload::BiblioGenerator biblio{{}, 3};

  // Each subscriber picks one exact type as its topic.
  const char* types[] = {"Stock", "Auction", "VehicleAuction", "CarAuction",
                         "Publication"};
  std::vector<std::string> chosen;
  for (std::size_t i = 0; i < kSubscribers; ++i)
    chosen.emplace_back(types[rng.below(std::size(types))]);

  std::vector<event::EventImage> events;
  for (std::size_t e = 0; e < kEvents; ++e) {
    switch (rng.below(3)) {
      case 0: events.push_back(event::image_of(stocks.next())); break;
      case 1: events.push_back(event::image_of(*auctions.next())); break;
      default: events.push_back(biblio.next_event()); break;
    }
  }

  util::TextTable table{
      {"Mechanism", "Filter evaluations", "Deliveries", "Notes"}};

  std::uint64_t topic_deliveries = 0;
  {
    baseline::TopicBus bus;
    for (std::size_t i = 0; i < kSubscribers; ++i)
      bus.subscribe(chosen[i], static_cast<baseline::TopicBus::SubscriberId>(i));
    for (const auto& image : events) bus.publish(image);
    topic_deliveries = bus.stats().deliveries;
    table.add_row({"topic bus (group comm)",
                   std::to_string(bus.stats().group_lookups) + " lookups",
                   std::to_string(bus.stats().deliveries),
                   std::to_string(bus.stats().topics) + " groups"});
  }

  {
    baseline::CentralizedServer server;
    for (std::size_t i = 0; i < kSubscribers; ++i)
      server.subscribe(
          filter::ConjunctiveFilter{filter::TypeConstraint{chosen[i], false}, {}},
          static_cast<baseline::SubscriberId>(i));
    for (const auto& image : events) server.publish(image);
    table.add_row({"centralized content",
                   std::to_string(server.stats().load_complexity),
                   std::to_string(server.stats().deliveries),
                   std::to_string(server.stats().filters) + " filters"});
    if (server.stats().deliveries != topic_deliveries)
      std::cout << "WARNING: centralized disagrees with the topic bus!\n";
  }

  {
    routing::OverlayConfig config;
    config.stage_counts = {1, 4, 16};
    routing::Overlay overlay{config};
    auto& pub = overlay.add_publisher();
    for (const char* type : types) {
      pub.advertise(weaken::StageSchema::drop_one_per_stage(
          reflect::TypeRegistry::global().get(type), 4));
    }
    overlay.run();
    for (std::size_t i = 0; i < kSubscribers; ++i) {
      overlay.add_subscriber().subscribe(
          filter::ConjunctiveFilter{filter::TypeConstraint{chosen[i], false}, {}},
          {});
      overlay.run();
    }
    for (const auto& image : events) pub.publish(image);
    overlay.run();

    std::uint64_t lc = 0, delivered = 0;
    for (const auto& broker : overlay.brokers()) {
      const auto stats = broker->stats();
      lc += stats.events_received * stats.filters;
    }
    for (const auto& sub : overlay.subscribers())
      delivered += sub->stats().events_delivered;
    table.add_row({"multi-stage content", std::to_string(lc),
                   std::to_string(delivered), "distributed"});
    if (delivered != topic_deliveries)
      std::cout << "WARNING: overlay disagrees with the topic bus!\n";
  }

  table.print(std::cout);
  std::cout << "\nShape check: identical deliveries; the topic bus spends "
               "one group lookup per event where content mechanisms spend "
               "filter evaluations — the degeneration the paper points at "
               "when filters weaken to (class, T, =).\n";
  return 0;
}
