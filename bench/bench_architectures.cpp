// Experiment A1 — the §2.1 architecture comparison the paper argues
// qualitatively: centralized server vs broadcast vs multi-stage overlay on
// the same workload.
//
// Expected shape: the centralized server concentrates ALL filtering load
// in one node (RLC = 1); broadcast pushes the full event stream to every
// subscriber (max messages, subscriber load grows with the event rate);
// the multi-stage overlay keeps every node's RLC far below 1 and total
// traffic between the two extremes.
#include "cake/baseline/baseline.hpp"
#include "harness.hpp"

int main() {
  using namespace cake;

  bench::SimConfig config;
  config.stage_counts = {1, 10, 100};
  config.subscribers = 150;
  config.events = 10'000;

  std::cout << "=== A1: Architecture comparison (paper §2.1) ===\n"
            << config.subscribers << " subscribers, " << config.events
            << " bibliographic events\n\n";

  // Shared workload.
  workload::ensure_types_registered();
  workload::BiblioGenerator gen{config.biblio, config.seed};
  std::vector<filter::ConjunctiveFilter> filters;
  for (std::size_t i = 0; i < config.subscribers; ++i)
    filters.push_back(gen.next_subscription());
  std::vector<event::EventImage> events;
  events.reserve(config.events);
  for (std::size_t e = 0; e < config.events; ++e)
    events.push_back(gen.next_event());

  // Centralized server.
  baseline::CentralizedServer central;
  for (std::size_t i = 0; i < filters.size(); ++i)
    central.subscribe(filters[i], static_cast<baseline::SubscriberId>(i));
  for (const auto& image : events) central.publish(image);
  const double central_rlc =
      static_cast<double>(central.stats().load_complexity) /
      (static_cast<double>(config.events) *
       static_cast<double>(config.subscribers));

  // Broadcast.
  baseline::BroadcastSystem broadcast;
  for (std::size_t i = 0; i < filters.size(); ++i)
    broadcast.subscribe(filters[i], broadcast.add_subscriber());
  for (const auto& image : events) broadcast.publish(image);
  double broadcast_max_rlc = 0.0, broadcast_sum_rlc = 0.0;
  for (std::size_t i = 0; i < config.subscribers; ++i) {
    const auto& s =
        broadcast.subscriber_stats(static_cast<baseline::SubscriberId>(i));
    const double rlc = static_cast<double>(s.load_complexity) /
                       (static_cast<double>(config.events) *
                        static_cast<double>(config.subscribers));
    broadcast_max_rlc = std::max(broadcast_max_rlc, rlc);
    broadcast_sum_rlc += rlc;
  }

  // Multi-stage overlay (same generator seed → same filters/events).
  const bench::SimResult overlay = bench::run_biblio_sim(config);
  double overlay_max_rlc = 0.0, overlay_sum_rlc = 0.0;
  for (const auto& load : overlay.all_loads()) {
    const double rlc = load.rlc(config.events, config.subscribers);
    overlay_max_rlc = std::max(overlay_max_rlc, rlc);
    overlay_sum_rlc += rlc;
  }

  util::TextTable table{{"Architecture", "Max node RLC", "Sum of RLCs",
                         "Messages", "Delivered"}};
  table.add_row({"Centralized server", util::format_number(central_rlc),
                 util::format_number(central_rlc),
                 std::to_string(config.events + central.stats().deliveries),
                 std::to_string(central.stats().deliveries)});
  table.add_row(
      {"Broadcast", util::format_number(broadcast_max_rlc),
       util::format_number(broadcast_sum_rlc),
       std::to_string(broadcast.stats().messages_sent),
       std::to_string([&] {
         std::uint64_t d = 0;
         for (std::size_t i = 0; i < config.subscribers; ++i)
           d += broadcast
                    .subscriber_stats(static_cast<baseline::SubscriberId>(i))
                    .events_delivered;
         return d;
       }())});
  table.add_row({"Multi-stage overlay", util::format_number(overlay_max_rlc),
                 util::format_number(overlay_sum_rlc),
                 std::to_string(overlay.network_messages),
                 std::to_string(overlay.deliveries)});
  table.print(std::cout);

  std::cout << "\nShape check: centralized max-node RLC is 1 by definition; "
               "multi-stage max-node RLC should be well below it, with the "
               "summed work of the same order (≈1).\n";
  return 0;
}
