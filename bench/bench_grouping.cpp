// Experiment A2 — the §4.2 subscription-placement claim: clustering
// similar subscriptions under one subtree (covering search) vs attaching
// by locality (random descent).
//
// Expected shape: the covering search leaves fewer filters in the system
// (parents collapse similar children), forwards each event along fewer
// paths, and uses less bandwidth — "the gain ... is quite significant when
// there are many similar subscriptions".
#include "harness.hpp"

int main() {
  using namespace cake;

  std::cout << "=== A2: Covering-search clustering vs random placement "
               "(paper §4.2) ===\n\n";

  util::TextTable table{{"Placement", "Filters@1", "Filters@2", "Filters@3",
                         "Messages", "Bytes", "Delivered"}};

  for (const routing::Placement placement :
       {routing::Placement::CoveringSearch, routing::Placement::Random}) {
    bench::SimConfig config;
    config.stage_counts = {1, 10, 100};
    config.subscribers = 150;
    config.events = 10'000;
    config.placement = placement;
    // A skewed universe makes many subscriptions similar — the regime the
    // paper's argument targets.
    config.biblio.authors = 30;
    config.biblio.author_skew = 1.3;

    const bench::SimResult result = bench::run_biblio_sim(config);

    std::size_t filters_by_stage[4] = {0, 0, 0, 0};
    for (const auto& load : result.broker_loads)
      filters_by_stage[load.stage] += load.filters;

    table.add_row({placement == routing::Placement::CoveringSearch
                       ? "covering search"
                       : "random (locality)",
                   std::to_string(filters_by_stage[1]),
                   std::to_string(filters_by_stage[2]),
                   std::to_string(filters_by_stage[3]),
                   std::to_string(result.network_messages),
                   std::to_string(result.network_bytes),
                   std::to_string(result.deliveries)});
  }

  table.print(std::cout);
  std::cout << "\nShape check: identical deliveries (correctness is not at "
               "stake), but the covering search should show fewer filters at "
               "stages 1-2 and fewer messages/bytes.\n";
  return 0;
}
