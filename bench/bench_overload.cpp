// Experiment A20 — graceful degradation under overload (DESIGN.md §15).
//
// Publish storms at 1x/2x/10x a baseline rate against a reliable overlay
// with credit flow control and slow-child quarantine armed, with one
// subscriber's consumer stalled for most of the storm. The claims gated in
// CI (tools/bench_gate.py, BENCH_overload.json):
//
//   * healthy subscribers ride through untouched — their delivery count
//     equals the exact-filter oracle at every storm multiplier (virtual
//     time, so the count is deterministic and gated exactly);
//   * the stalled consumer never costs a lease: zero Expired notices and
//     zero forced rejoins, storm or no storm (control traffic is never
//     starved behind events);
//   * every shed frame is accounted: the conservation ledger's total is
//     deterministic per multiplier and gated exactly;
//   * memory stays bounded: peak RSS gets a loose band — the watermark
//     pens and stall inboxes cap per-child state, so a 10x storm must not
//     balloon the process.
//
// Goodput (published events/sec of wall-clock sim execution) takes the
// standard 10% wall-clock band.
#include <sys/resource.h>

#include <chrono>
#include <fstream>

#include "harness.hpp"

namespace {

using namespace cake;

struct A20Row {
  std::size_t multiplier = 1;
  std::uint64_t published = 0;
  std::uint64_t healthy_expected = 0;
  std::uint64_t healthy_delivered = 0;
  std::uint64_t victim_delivered = 0;
  std::uint64_t total_shed = 0;
  std::uint64_t expired_notices = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t quarantines = 0;
  double events_per_sec = 0.0;
  long peak_rss_kb = 0;
};

long peak_rss_kb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // kilobytes on Linux
}

A20Row run_arm(std::size_t multiplier) {
  workload::ensure_types_registered();
  routing::OverlayConfig config;
  config.stage_counts = {1, 3, 9};
  config.broker.ttl = 2'000'000;
  config.broker.renew_interval = 900'000;
  config.broker.reap_interval = 1'000'000;
  config.subscriber.renew_interval = 900'000;
  config.link.reliability = link::Reliability::Reliable;
  config.link.credit = true;
  config.broker.quarantine = true;
  config.broker.child_queue = {.low = 16, .high = 48, .capacity = 96};
  config.broker.quarantine_after = 200'000;
  config.broker.quarantine_drain_interval = 50'000;
  config.broker.quarantine_pen_limit = 256;
  config.subscriber.stall_inbox_limit = 256;
  routing::Overlay overlay{config};
  auto& pub = overlay.add_publisher();
  pub.advertise(workload::BiblioGenerator::schema());
  overlay.run();

  workload::BiblioConfig dense;
  dense.years = 3;
  dense.conferences = 4;
  dense.authors = 10;
  workload::BiblioGenerator gen{dense, 2020};

  constexpr int kSubs = 30;
  std::vector<filter::ConjunctiveFilter> filters;
  std::vector<std::uint64_t> received(kSubs, 0);
  std::vector<routing::SubscriberNode*> subs;
  for (int i = 0; i < kSubs; ++i) {
    // The victim gets a year-only filter (high match rate): its stalled
    // backlog must actually exhaust credit and trip quarantine, not hide
    // behind a selective subscription.
    filters.push_back(gen.next_subscription(i == 0 ? 3 : i % 3));
    auto& sub = overlay.add_subscriber();
    sub.subscribe(filters[i],
                  [&received, i](const event::EventImage&) { ++received[i]; });
    subs.push_back(&sub);
    overlay.run();
  }

  // The storm: `multiplier` times the baseline event budget, paced at the
  // baseline inter-publish gap (a higher multiplier is a longer sustained
  // storm at the same instantaneous rate — the stalled consumer's backlog
  // scales with it while healthy consumers keep pace). Subscriber 0 stalls
  // from 10% into the storm until 70% — several lease-renewal cycles at
  // the 10x multiplier, so "zero expiries" is a real claim, not slack.
  const std::size_t events = 300 * multiplier;
  const std::size_t stall_at = events / 10;
  const std::size_t unstall_at = events * 7 / 10;
  std::vector<std::uint64_t> expected(kSubs, 0);
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t e = 0; e < events; ++e) {
    if (e == stall_at) subs[0]->stall();
    if (e == unstall_at) subs[0]->unstall();
    const event::EventImage image = gen.next_event();
    for (int i = 0; i < kSubs; ++i)
      if (filters[i].matches(image, overlay.registry())) ++expected[i];
    pub.publish(image);
    overlay.run();
    overlay.scheduler().run_until(overlay.scheduler().now() + 5'000);
  }
  if (subs[0]->stalled()) subs[0]->unstall();
  // Convergence: quarantine pens drain on background ticks; give the
  // overlay several TTLs so recovery is complete before accounting.
  overlay.scheduler().run_until(overlay.scheduler().now() + 8'000'000);
  overlay.run();
  const auto wall_end = std::chrono::steady_clock::now();

  A20Row row;
  row.multiplier = multiplier;
  row.published = events;
  for (int i = 1; i < kSubs; ++i) {
    row.healthy_expected += expected[i];
    row.healthy_delivered += received[i];
  }
  row.victim_delivered = received[0];
  const metrics::ShedLedger ledger = metrics::shed_ledger(overlay);
  row.total_shed = ledger.total_shed();
  for (const auto& broker : overlay.brokers()) {
    row.expired_notices += broker->stats().expired_notices;
    row.quarantines += broker->stats().children_quarantined;
  }
  for (const auto& sub : overlay.subscribers())
    row.rejoins += sub->stats().rejoins;
  const double seconds =
      std::chrono::duration<double>(wall_end - wall_start).count();
  row.events_per_sec = seconds > 0.0 ? double(events) / seconds : 0.0;
  row.peak_rss_kb = peak_rss_kb();
  return row;
}

}  // namespace

int main() {
  std::cout << "=== A20: Graceful degradation under overload (DESIGN.md "
               "§15) ===\n"
            << "30 subscribers, reliable + credit + quarantine; subscriber "
               "0 stalled for 60% of each storm\n\n";

  util::TextTable table{{"Storm", "Published", "Healthy delivery", "Victim",
                         "Shed", "Expired", "Quarantines", "Events/sec",
                         "Peak RSS (MB)"}};
  std::vector<A20Row> rows;
  bool ok = true;
  for (const std::size_t multiplier : {1u, 2u, 10u}) {
    const A20Row row = run_arm(multiplier);
    table.add_row(
        {std::to_string(multiplier) + "x", std::to_string(row.published),
         std::to_string(row.healthy_delivered) + "/" +
             std::to_string(row.healthy_expected),
         std::to_string(row.victim_delivered), std::to_string(row.total_shed),
         std::to_string(row.expired_notices), std::to_string(row.quarantines),
         util::format_number(row.events_per_sec),
         util::format_number(double(row.peak_rss_kb) / 1024.0)});
    // The bench is its own oracle: a healthy-subscriber delivery gap or a
    // storm-induced lease expiry is a correctness failure, not a slow run.
    if (row.healthy_delivered != row.healthy_expected) {
      std::cerr << "A20 FAIL: healthy subscribers lost events at "
                << multiplier << "x (" << row.healthy_delivered << " != "
                << row.healthy_expected << ")\n";
      ok = false;
    }
    if (row.expired_notices != 0 || row.rejoins != 0) {
      std::cerr << "A20 FAIL: storm cost a lease at " << multiplier << "x ("
                << row.expired_notices << " expiries, " << row.rejoins
                << " rejoins)\n";
      ok = false;
    }
    rows.push_back(row);
  }
  table.print(std::cout);
  std::cout << "\nShape check: healthy delivery is exact at every "
               "multiplier; shedding concentrates on the stalled consumer "
               "and is fully accounted; expiries stay at zero.\n";

  std::ofstream json{"BENCH_overload.json"};
  json << "{\n  \"experiment\": \"A20\",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const A20Row& r = rows[i];
    json << "    {\"multiplier\": " << r.multiplier
         << ", \"published\": " << r.published
         << ", \"healthy_expected\": " << r.healthy_expected
         << ", \"healthy_delivered\": " << r.healthy_delivered
         << ", \"victim_delivered\": " << r.victim_delivered
         << ", \"total_shed\": " << r.total_shed
         << ", \"expired_notices\": " << r.expired_notices
         << ", \"rejoins\": " << r.rejoins
         << ", \"quarantines\": " << r.quarantines
         << ", \"events_per_sec\": " << r.events_per_sec
         << ", \"peak_rss_kb\": " << r.peak_rss_kb << "}"
         << (i + 1 == rows.size() ? "\n" : ",\n");
  }
  json << "  ]\n}\n";
  std::cout << "\nWrote BENCH_overload.json\n";
  return ok ? 0 : 1;
}
