// Experiment T1 — reproduces the §5.3 RLC table.
//
// Paper setup: bibliographic events (author, conference, year, title), a
// four-level hierarchy (1 stage-3 root, 10 stage-2, 100 stage-1 brokers,
// user-level stage 0), equality filters weakened one attribute per stage.
//
// Paper's reported table (shape to reproduce, not absolute values):
//
//   Stage  Node avg. of RLC   Total node avg. of RLC
//   0      2e-7               2e-4
//   1      2e-4               2e-1
//   2      0.1                1
//   3      0.02               0.02
//
// Expected shape: per-node RLC orders of magnitude below the centralized
// server's 1.0 at the user level, growing toward the middle stages, small
// again at the root; the global sum of stage totals ≈ 1 (the work of one
// centralized server, spread out).
#include "harness.hpp"

int main() {
  using namespace cake;

  bench::SimConfig config;
  config.stage_counts = {1, 10, 100};
  config.subscribers = 150;
  config.events = 10'000;

  std::cout << "=== T1: Relative Load Complexity per stage (paper §5.3) ===\n"
            << "topology: 1 stage-3 root, 10 stage-2, 100 stage-1 brokers, "
            << config.subscribers << " subscribers\n"
            << "workload: " << config.events
            << " bibliographic events, equality subscriptions\n\n";

  const bench::SimResult result = bench::run_biblio_sim(config);
  const auto summaries = result.summaries();

  metrics::rlc_table(summaries).print(std::cout);
  std::cout << "\nGlobal total of RLCs (paper: ~1): "
            << util::format_number(metrics::global_rlc(summaries)) << "\n";

  std::cout << "\nDiagnostics:\n";
  metrics::stage_table(summaries).print(std::cout);
  std::cout << "\nnetwork: " << result.network_messages << " messages, "
            << result.network_bytes << " bytes, " << result.deliveries
            << " end-to-end deliveries\n";
  return 0;
}
