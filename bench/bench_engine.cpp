// Experiment A7 — matching-engine ablation inside the live overlay: the
// paper defers "efficient indexing and matching techniques" to related
// work and ships the naive Fig. 6 loop; this measures what the counting
// index buys end to end (wall-clock for the same simulation, identical
// deliveries).
#include <chrono>

#include "harness.hpp"

int main() {
  using namespace cake;

  std::cout << "=== A7: Matching-engine ablation (Fig. 6 naive loop vs "
               "counting index) ===\n\n";

  util::TextTable table{{"Engine", "Subscribers", "Wall-clock (ms)",
                         "Deliveries"}};

  for (const std::size_t subscribers : {150u, 600u}) {
    std::uint64_t reference_deliveries = 0;
    for (const index::Engine engine :
         {index::Engine::Naive, index::Engine::Counting}) {
      bench::SimConfig config;
      config.stage_counts = {1, 10, 100};
      config.subscribers = subscribers;
      config.events = 10'000;
      config.engine = engine;

      const auto start = std::chrono::steady_clock::now();
      const bench::SimResult result = bench::run_biblio_sim(config);
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);

      if (engine == index::Engine::Naive)
        reference_deliveries = result.deliveries;
      else if (result.deliveries != reference_deliveries)
        std::cout << "WARNING: engines disagree on deliveries!\n";

      table.add_row({engine == index::Engine::Naive ? "naive (Fig. 6)"
                                                    : "counting index",
                     std::to_string(subscribers),
                     std::to_string(elapsed.count()),
                     std::to_string(result.deliveries)});
    }
  }

  table.print(std::cout);
  std::cout << "\nShape check: identical deliveries; the counting index "
               "matters more as tables grow (per-node tables here are small "
               "by design, so the end-to-end gap is modest — the per-call "
               "gap is in bench_matching_micro).\n";
  return 0;
}
