// Experiment F7 — reproduces Figure 7: matching rate (MR) per node for
// 150 level-0 subscribers, 100 level-1 and 10 level-2 brokers.
//
// Paper's reported shape: most level-0/level-1 nodes sit near MR = 1
// (pre-filtering means nodes mostly receive events they want), level-2
// nodes somewhat lower, average subscriber MR ≈ 0.87.
//
// Output: one "<stage> <node-index> <MR>" row per node — the same series
// the paper plots — followed by per-stage averages.
#include "harness.hpp"

int main() {
  using namespace cake;

  bench::SimConfig config;
  config.stage_counts = {1, 10, 100};
  config.subscribers = 150;
  config.events = 10'000;

  std::cout << "=== F7: Matching rate per node (paper Fig. 7) ===\n\n";
  const bench::SimResult result = bench::run_biblio_sim(config);

  std::cout << "# series: stage node_index MR   (only nodes that received "
               "events)\n";
  for (std::size_t stage : {0u, 1u, 2u}) {
    std::size_t index = 0;
    for (const auto& load : result.all_loads()) {
      if (load.stage != stage) continue;
      if (load.events_received > 0)
        std::cout << stage << ' ' << index << ' '
                  << util::format_number(load.mr()) << '\n';
      ++index;
    }
  }

  std::cout << "\nPer-stage averages (over receiving nodes):\n";
  util::TextTable table{{"Level", "Nodes", "Receiving", "Avg MR (receiving)"}};
  for (std::size_t stage : {0u, 1u, 2u}) {
    std::size_t nodes = 0, receiving = 0;
    double mr_sum = 0.0;
    for (const auto& load : result.all_loads()) {
      if (load.stage != stage) continue;
      ++nodes;
      if (load.events_received > 0) {
        ++receiving;
        mr_sum += load.mr();
      }
    }
    table.add_row({std::to_string(stage), std::to_string(nodes),
                   std::to_string(receiving),
                   util::format_number(receiving ? mr_sum / receiving : 0.0)});
  }
  table.print(std::cout);

  double sub_mr = 0.0;
  std::size_t receiving_subs = 0;
  for (const auto& load : result.subscriber_loads) {
    if (load.events_received > 0) {
      sub_mr += load.mr();
      ++receiving_subs;
    }
  }
  std::cout << "\nAverage subscriber MR (paper: 0.87): "
            << util::format_number(receiving_subs ? sub_mr / receiving_subs : 0.0)
            << "  (" << receiving_subs << "/" << result.subscriber_loads.size()
            << " subscribers received events)\n";
  return 0;
}
