// Shared benchmark harness: builds the paper's §5.2 simulation — a
// hierarchy of brokers, bibliographic events and Zipf-skewed subscriptions
// — runs it to quiescence and returns the per-node loads that the
// experiment binaries aggregate into the paper's tables and figures.
#pragma once

#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "cake/metrics/metrics.hpp"
#include "cake/routing/overlay.hpp"
#include "cake/workload/generators.hpp"

namespace cake::bench {

struct SimConfig {
  /// Brokers per stage, root first (paper: 1 stage-3, 10 stage-2, 100
  /// stage-1 nodes).
  std::vector<std::size_t> stage_counts{1, 10, 100};
  std::size_t subscribers = 150;  ///< paper Fig. 7: 150 level-0 processes
  std::size_t events = 10'000;
  std::size_t publishers = 1;     ///< events split round-robin among them
  std::size_t subscriptions_per_subscriber = 1;  ///< paper: millions vs 100k
  std::size_t wildcard_every = 0;  ///< every n-th subscriber wildcards title
  std::size_t wildcard_count = 1;  ///< attributes wildcarded when triggered
  bool wildcard_aware = true;      ///< §4.4 placement vs naive attachment
  routing::Placement placement = routing::Placement::CoveringSearch;
  index::Engine engine = index::Engine::Naive;
  workload::BiblioConfig biblio{};
  std::uint64_t seed = 2002;
};

struct SimResult {
  std::unique_ptr<routing::Overlay> overlay;
  std::vector<metrics::NodeLoad> broker_loads;
  std::vector<metrics::NodeLoad> subscriber_loads;
  std::uint64_t total_events = 0;
  std::uint64_t total_subscriptions = 0;
  std::uint64_t network_messages = 0;
  std::uint64_t network_bytes = 0;
  std::uint64_t deliveries = 0;  ///< events matched end-to-end, summed

  [[nodiscard]] std::vector<metrics::NodeLoad> all_loads() const {
    std::vector<metrics::NodeLoad> all = broker_loads;
    all.insert(all.end(), subscriber_loads.begin(), subscriber_loads.end());
    return all;
  }

  [[nodiscard]] std::vector<metrics::StageSummary> summaries() const {
    return metrics::summarize_by_stage(all_loads(), total_events,
                                       total_subscriptions);
  }
};

/// Runs one full simulation: advertise, join all subscribers (letting each
/// handshake settle so the covering search clusters them), publish the
/// event stream, drain, and collect per-node loads.
inline SimResult run_biblio_sim(const SimConfig& config) {
  workload::ensure_types_registered();

  routing::OverlayConfig overlay_config;
  overlay_config.stage_counts = config.stage_counts;
  overlay_config.broker.placement = config.placement;
  overlay_config.broker.engine = config.engine;
  overlay_config.broker.wildcard_aware = config.wildcard_aware;
  overlay_config.seed = config.seed;

  SimResult result;
  result.overlay = std::make_unique<routing::Overlay>(overlay_config);
  routing::Overlay& overlay = *result.overlay;

  std::vector<routing::PublisherNode*> publishers;
  for (std::size_t p = 0; p < std::max<std::size_t>(config.publishers, 1); ++p)
    publishers.push_back(&overlay.add_publisher());
  publishers.front()->advertise(
      workload::BiblioGenerator::schema(config.stage_counts.size() + 1));
  overlay.run();

  workload::BiblioGenerator gen{config.biblio, config.seed};
  for (std::size_t i = 0; i < config.subscribers; ++i) {
    const bool wildcard =
        config.wildcard_every != 0 && i % config.wildcard_every == 0;
    auto& sub = overlay.add_subscriber();
    for (std::size_t s = 0; s < std::max<std::size_t>(
                                    config.subscriptions_per_subscriber, 1);
         ++s) {
      sub.subscribe(gen.next_subscription(wildcard ? config.wildcard_count : 0),
                    {});
    }
    overlay.run();
  }

  for (std::size_t e = 0; e < config.events; ++e)
    publishers[e % publishers.size()]->publish(gen.next_event());
  overlay.run();

  result.broker_loads = metrics::broker_loads(overlay);
  result.subscriber_loads = metrics::subscriber_loads(overlay);
  result.total_events = config.events;
  result.total_subscriptions = config.subscribers;
  result.network_messages = overlay.network().total_messages();
  result.network_bytes = overlay.network().total_bytes();
  for (const auto& load : result.subscriber_loads)
    result.deliveries += load.events_matched;
  return result;
}

}  // namespace cake::bench
