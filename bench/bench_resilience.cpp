// Experiment A11 — the §4.3 soft-state claim, quantified: "the scheme ...
// handles process failure and network partitions well".
//
// Sweep of uniform message-loss rates. Each run: install subscriptions,
// publish through a lossy phase, heal, let renewals/Expired-rejoin repair
// the control plane, then publish a verification burst and compare against
// the oracle.
//
// Expected shape: events published *during* loss are partially lost (no
// event retransmission — the paper's design), but after healing the
// post-heal delivery ratio returns to 100% at every loss rate, with the
// repair visible as rejoin counts.
#include "harness.hpp"

int main() {
  using namespace cake;

  std::cout << "=== A11: Soft-state recovery under message loss (paper "
               "§4.3) ===\n"
            << "60 subscribers, TTL 2s, renew 0.9s; 20s lossy phase, then "
               "heal + verification burst\n\n";

  util::TextTable table{{"Loss rate", "Dropped msgs", "Rejoins",
                         "Lossy-phase delivery", "Post-heal delivery"}};

  for (const double loss : {0.0, 0.1, 0.3, 0.5, 0.8}) {
    workload::ensure_types_registered();
    routing::OverlayConfig config;
    config.stage_counts = {1, 3, 9};
    config.broker.ttl = 2'000'000;
    config.broker.renew_interval = 900'000;
    config.broker.reap_interval = 1'000'000;
    config.subscriber.renew_interval = 900'000;
    routing::Overlay overlay{config};
    auto& pub = overlay.add_publisher();
    pub.advertise(workload::BiblioGenerator::schema());
    overlay.run();

    workload::BiblioConfig dense;
    dense.years = 3;
    dense.conferences = 4;
    dense.authors = 10;
    workload::BiblioGenerator gen{dense, 7};

    constexpr int kSubs = 60;
    std::vector<filter::ConjunctiveFilter> filters;
    std::vector<std::uint64_t> received(kSubs, 0);
    for (int i = 0; i < kSubs; ++i) {
      filters.push_back(gen.next_subscription(i % 3));
      overlay.add_subscriber().subscribe(
          filters[i],
          [&received, i](const event::EventImage&) { ++received[i]; });
      overlay.run();
    }

    auto burst = [&](int events, std::uint64_t& oracle) {
      for (int e = 0; e < events; ++e) {
        const event::EventImage image = gen.next_event();
        for (int i = 0; i < kSubs; ++i)
          if (filters[i].matches(image, overlay.registry())) ++oracle;
        pub.publish(image);
        overlay.run();
        overlay.scheduler().run_until(overlay.scheduler().now() + 50'000);
      }
    };
    auto total_received = [&] {
      std::uint64_t sum = 0;
      for (const auto count : received) sum += count;
      return sum;
    };

    // Lossy phase: 20 virtual seconds of traffic under uniform loss.
    overlay.network().set_loss_rate(loss, 99);
    std::uint64_t lossy_oracle = 0;
    burst(400, lossy_oracle);
    const std::uint64_t lossy_received = total_received();
    const std::uint64_t dropped = overlay.network().dropped();

    // Heal, give the soft state a few renewal rounds to repair itself.
    overlay.network().set_loss_rate(0.0);
    overlay.scheduler().run_until(overlay.scheduler().now() + 6'000'000);
    overlay.run();

    // Verification burst.
    std::uint64_t heal_oracle = 0;
    burst(200, heal_oracle);
    const std::uint64_t heal_received = total_received() - lossy_received;

    std::uint64_t rejoins = 0;
    for (const auto& sub : overlay.subscribers())
      rejoins += sub->stats().rejoins;

    auto percent = [](std::uint64_t got, std::uint64_t want) {
      return want == 0 ? std::string{"-"}
                       : util::format_number(100.0 * double(got) / double(want)) + "%";
    };
    table.add_row({util::format_number(loss * 100.0) + "%",
                   std::to_string(dropped), std::to_string(rejoins),
                   percent(lossy_received, lossy_oracle),
                   percent(heal_received, heal_oracle)});
  }

  table.print(std::cout);
  std::cout << "\nShape check: lossy-phase delivery degrades with the loss "
               "rate (events are not retransmitted, by design); post-heal "
               "delivery returns to 100% everywhere — the soft state repairs "
               "itself via renewals and Expired-triggered rejoins.\n";
  return 0;
}
