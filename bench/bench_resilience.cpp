// Experiment A11 — the §4.3 soft-state claim, quantified: "the scheme ...
// handles process failure and network partitions well".
//
// Sweep of uniform message-loss rates. Each run: install subscriptions,
// publish through a lossy phase, heal, let renewals/Expired-rejoin repair
// the control plane, then publish a verification burst and compare against
// the oracle.
//
// Expected shape: events published *during* loss are partially lost (no
// event retransmission — the paper's design), but after healing the
// post-heal delivery ratio returns to 100% at every loss rate, with the
// repair visible as rejoin counts.
//
// Experiment A15 extends the sweep with the link layer in the loop:
// steady-state loss 0–30% across {best-effort, reliable}. Best-effort
// reproduces the paper's "lossy phase" degradation; reliable links hold
// delivery at 100% and the cost shows up as retransmits/event and tail
// latency instead. Emits BENCH_resilience.json for the CI artifact.
#include <fstream>

#include "cake/util/stats.hpp"
#include "harness.hpp"

namespace {

void run_a11() {
  using namespace cake;

  std::cout << "=== A11: Soft-state recovery under message loss (paper "
               "§4.3) ===\n"
            << "60 subscribers, TTL 2s, renew 0.9s; 20s lossy phase, then "
               "heal + verification burst\n\n";

  util::TextTable table{{"Loss rate", "Dropped msgs", "Rejoins",
                         "Lossy-phase delivery", "Post-heal delivery"}};

  for (const double loss : {0.0, 0.1, 0.3, 0.5, 0.8}) {
    workload::ensure_types_registered();
    routing::OverlayConfig config;
    config.stage_counts = {1, 3, 9};
    config.broker.ttl = 2'000'000;
    config.broker.renew_interval = 900'000;
    config.broker.reap_interval = 1'000'000;
    config.subscriber.renew_interval = 900'000;
    routing::Overlay overlay{config};
    auto& pub = overlay.add_publisher();
    pub.advertise(workload::BiblioGenerator::schema());
    overlay.run();

    workload::BiblioConfig dense;
    dense.years = 3;
    dense.conferences = 4;
    dense.authors = 10;
    workload::BiblioGenerator gen{dense, 7};

    constexpr int kSubs = 60;
    std::vector<filter::ConjunctiveFilter> filters;
    std::vector<std::uint64_t> received(kSubs, 0);
    for (int i = 0; i < kSubs; ++i) {
      filters.push_back(gen.next_subscription(i % 3));
      overlay.add_subscriber().subscribe(
          filters[i],
          [&received, i](const event::EventImage&) { ++received[i]; });
      overlay.run();
    }

    auto burst = [&](int events, std::uint64_t& oracle) {
      for (int e = 0; e < events; ++e) {
        const event::EventImage image = gen.next_event();
        for (int i = 0; i < kSubs; ++i)
          if (filters[i].matches(image, overlay.registry())) ++oracle;
        pub.publish(image);
        overlay.run();
        overlay.scheduler().run_until(overlay.scheduler().now() + 50'000);
      }
    };
    auto total_received = [&] {
      std::uint64_t sum = 0;
      for (const auto count : received) sum += count;
      return sum;
    };

    // Lossy phase: 20 virtual seconds of traffic under uniform loss.
    overlay.network().set_loss_rate(loss, 99);
    std::uint64_t lossy_oracle = 0;
    burst(400, lossy_oracle);
    const std::uint64_t lossy_received = total_received();
    const std::uint64_t dropped = overlay.network().dropped();

    // Heal, give the soft state a few renewal rounds to repair itself.
    overlay.network().set_loss_rate(0.0);
    overlay.scheduler().run_until(overlay.scheduler().now() + 6'000'000);
    overlay.run();

    // Verification burst.
    std::uint64_t heal_oracle = 0;
    burst(200, heal_oracle);
    const std::uint64_t heal_received = total_received() - lossy_received;

    std::uint64_t rejoins = 0;
    for (const auto& sub : overlay.subscribers())
      rejoins += sub->stats().rejoins;

    auto percent = [](std::uint64_t got, std::uint64_t want) {
      return want == 0 ? std::string{"-"}
                       : util::format_number(100.0 * double(got) / double(want)) + "%";
    };
    table.add_row({util::format_number(loss * 100.0) + "%",
                   std::to_string(dropped), std::to_string(rejoins),
                   percent(lossy_received, lossy_oracle),
                   percent(heal_received, heal_oracle)});
  }

  table.print(std::cout);
  std::cout << "\nShape check: lossy-phase delivery degrades with the loss "
               "rate (events are not retransmitted, by design); post-heal "
               "delivery returns to 100% everywhere — the soft state repairs "
               "itself via renewals and Expired-triggered rejoins.\n";
}

struct A15Row {
  double loss = 0.0;
  const char* mode = "";
  double delivery = 0.0;           // delivered / oracle
  cake::util::Summary latency;     // virtual us, matched deliveries only
  double retransmits_per_event = 0.0;
  std::uint64_t events_shed = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t peers_declared_dead = 0;
};

A15Row run_a15_arm(double loss, cake::link::Reliability reliability,
                   std::uint64_t seed) {
  using namespace cake;
  workload::ensure_types_registered();

  routing::OverlayConfig config;
  config.stage_counts = {1, 3, 9};
  config.link.reliability = reliability;
  routing::Overlay overlay{config};
  auto& pub = overlay.add_publisher();
  pub.advertise(workload::BiblioGenerator::schema());
  overlay.run();

  workload::BiblioConfig dense;
  dense.years = 3;
  dense.conferences = 4;
  dense.authors = 10;
  workload::BiblioGenerator gen{dense, 7};

  // One latency sample per matched delivery. Events are published strictly
  // one at a time with a window far beyond the retransmission ceiling, so
  // "now - publish_time" attributes (almost) every delivery to the right
  // event without threading an id through the user-level callback.
  constexpr int kSubs = 30;
  sim::Time publish_time = 0;
  std::uint64_t delivered = 0;
  std::vector<double> latencies;
  std::vector<filter::ConjunctiveFilter> filters;
  for (int i = 0; i < kSubs; ++i) {
    filters.push_back(gen.next_subscription(i % 3));
    overlay.add_subscriber().subscribe(
        filters[i], [&](const event::EventImage&) {
          ++delivered;
          latencies.push_back(
              static_cast<double>(overlay.scheduler().now() - publish_time));
        });
    overlay.run();
  }

  // Subscriptions installed cleanly; the loss process runs for the whole
  // measured phase — control plane (renewals) and data plane alike.
  overlay.network().set_loss_rate(loss, seed);
  constexpr int kEvents = 150;
  constexpr sim::Time kWindow = 150'000;
  std::uint64_t oracle = 0;
  for (int e = 0; e < kEvents; ++e) {
    const event::EventImage image = gen.next_event();
    for (int i = 0; i < kSubs; ++i)
      if (filters[i].matches(image, overlay.registry())) ++oracle;
    publish_time = overlay.scheduler().now();
    pub.publish(image);
    overlay.run();
    overlay.scheduler().run_until(overlay.scheduler().now() + kWindow);
    overlay.run();
  }
  // Drain straggling retransmissions.
  overlay.network().set_loss_rate(0.0);
  overlay.scheduler().run_until(overlay.scheduler().now() + 500'000);
  overlay.run();

  const link::LinkCounters links = overlay.link_counters();
  A15Row row;
  row.loss = loss;
  row.mode =
      reliability == link::Reliability::Reliable ? "reliable" : "best-effort";
  row.delivery = oracle == 0 ? 0.0 : double(delivered) / double(oracle);
  row.latency = util::summarize(std::move(latencies));
  row.retransmits_per_event = double(links.retransmits) / double(kEvents);
  row.events_shed = links.events_shed;
  row.duplicates_suppressed = links.duplicates_suppressed;
  row.peers_declared_dead = links.peers_declared_dead;
  return row;
}

void run_a15() {
  using namespace cake;

  std::cout << "\n=== A15: Link-layer reliability under steady-state loss "
               "===\n"
            << "30 subscribers, 150 events; loss applied to every link for "
               "the whole run\n\n";

  util::TextTable table{{"Loss rate", "Mode", "Delivery", "p50 lat (us)",
                         "p99 lat (us)", "Retx/event", "Shed", "Dups supp"}};
  std::vector<A15Row> rows;
  std::uint64_t seed = 1500;
  for (const double loss : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    for (const auto mode :
         {link::Reliability::BestEffort, link::Reliability::Reliable}) {
      const A15Row row = run_a15_arm(loss, mode, seed++);
      table.add_row({util::format_number(loss * 100.0) + "%", row.mode,
                     util::format_number(row.delivery * 100.0) + "%",
                     util::format_number(row.latency.p50),
                     util::format_number(row.latency.p99),
                     util::format_number(row.retransmits_per_event),
                     std::to_string(row.events_shed),
                     std::to_string(row.duplicates_suppressed)});
      rows.push_back(row);
    }
  }
  table.print(std::cout);
  std::cout << "\nShape check: best-effort delivery decays roughly with the "
               "per-hop loss raised to the path length; reliable stays at "
               "100% while retransmits/event and p99 latency absorb the "
               "loss.\n";

  std::ofstream json{"BENCH_resilience.json"};
  json << "{\n  \"experiment\": \"A15\",\n  \"arms\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const A15Row& r = rows[i];
    json << "    {\"loss\": " << r.loss << ", \"mode\": \"" << r.mode
         << "\", \"delivery_rate\": " << r.delivery
         << ", \"latency_p50_us\": " << r.latency.p50
         << ", \"latency_p99_us\": " << r.latency.p99
         << ", \"retransmits_per_event\": " << r.retransmits_per_event
         << ", \"events_shed\": " << r.events_shed
         << ", \"duplicates_suppressed\": " << r.duplicates_suppressed
         << ", \"peers_declared_dead\": " << r.peers_declared_dead << "}"
         << (i + 1 == rows.size() ? "\n" : ",\n");
  }
  json << "  ]\n}\n";
  std::cout << "\nWrote BENCH_resilience.json\n";
}

}  // namespace

int main() {
  run_a11();
  run_a15();
  return 0;
}
