// Experiment A9 — quantifies the paper's §4 footnote: "Non-hierarchical
// configurations can also be used, but they have a higher complexity and
// are not described in this paper."
//
// The same bibliographic workload runs on (a) the staged hierarchy
// (1-10-100, schema weakening, covering search) and (b) a random-tree
// peer mesh of the same 111 brokers (exact filters, reverse-path routing,
// per-link covering collapse).
//
// Expected shape: both deliver identical sets. The peer mesh pays the
// "higher complexity" in routing state — exact filters replicated along
// demand paths instead of weakened forms aggregated per stage — while
// buying shorter average delivery paths (no detour through a root).
#include "cake/peer/peer.hpp"
#include "harness.hpp"

int main() {
  using namespace cake;

  constexpr std::size_t kSubscribers = 150;
  constexpr std::size_t kEvents = 10'000;

  std::cout << "=== A9: Staged hierarchy vs peer mesh (paper §4 footnote) "
               "===\n"
            << kSubscribers << " subscribers, " << kEvents
            << " events, 111 brokers each\n\n";

  // Shared workload.
  workload::ensure_types_registered();
  workload::BiblioGenerator gen{{}, 2002};
  std::vector<filter::ConjunctiveFilter> filters;
  for (std::size_t i = 0; i < kSubscribers; ++i)
    filters.push_back(gen.next_subscription());
  std::vector<event::EventImage> events;
  for (std::size_t e = 0; e < kEvents; ++e) events.push_back(gen.next_event());

  util::TextTable table{{"Configuration", "Total filters", "Max filters/node",
                         "Messages", "Avg latency (ms)", "Delivered"}};

  // (a) staged hierarchy.
  {
    bench::SimConfig config;
    config.stage_counts = {1, 10, 100};
    config.subscribers = kSubscribers;
    config.events = kEvents;
    const bench::SimResult result = bench::run_biblio_sim(config);
    std::size_t total_filters = 0, max_filters = 0;
    for (const auto& load : result.broker_loads) {
      total_filters += load.filters;
      max_filters = std::max(max_filters, load.filters);
    }
    const auto latency = metrics::delivery_latency(*result.overlay);
    table.add_row({"staged hierarchy", std::to_string(total_filters),
                   std::to_string(max_filters),
                   std::to_string(result.network_messages),
                   util::format_number(latency.mean() / 1000.0),
                   std::to_string(result.deliveries)});
  }

  // (b) peer mesh, with and without advertisement pruning.
  for (const bool advertisements : {false, true}) {
    peer::PeerConfig peer_config;
    peer_config.use_advertisements = advertisements;
    peer::PeerMesh mesh{111, peer_config, 2002};
    auto& pub = mesh.add_publisher(0);
    if (advertisements) {
      pub.advertise(filter::FilterBuilder{"Publication"}.build());
      mesh.run();
    }
    std::uint64_t delivered = 0;
    for (std::size_t i = 0; i < kSubscribers; ++i) {
      mesh.add_subscriber().subscribe(filters[i], {});
    }
    mesh.run();
    for (const auto& image : events) pub.publish(image);
    mesh.run();

    std::size_t total_filters = 0, max_filters = 0;
    for (const auto& broker : mesh.brokers()) {
      total_filters += broker->stats().filters;
      max_filters = std::max(max_filters, broker->stats().filters);
    }
    util::RunningStats latency;
    for (const auto& sub : mesh.subscribers()) {
      delivered += sub->events_delivered();
      latency.merge(sub->delivery_latency());
    }
    table.add_row({advertisements ? "peer mesh + advertisements" : "peer mesh",
                   std::to_string(total_filters),
                   std::to_string(max_filters),
                   std::to_string(mesh.network().total_messages()),
                   util::format_number(latency.mean() / 1000.0),
                   std::to_string(delivered)});
  }

  table.print(std::cout);
  std::cout << "\nShape check: identical deliveries; the peer mesh carries "
               "substantially more routing state (the footnote's 'higher "
               "complexity') in exchange for root-free paths.\n";
  return 0;
}
