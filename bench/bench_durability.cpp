// Experiment A17 — durability cost and recovery fidelity (DESIGN.md §12).
//
// Three questions, one binary:
//
//   append   what does journaling an inbound event frame cost? Two arms
//            append the same recorded frame stream — `append_mem` over
//            MemStorage (the simulated-broker configuration: pure format
//            cost) and `append_file` over FileStorage (the cake_replay
//            configuration: plus real filesystem writes). Wall-clock, so
//            best-of-R and a relative CI band.
//
//   recovery how fast does the segment-chain scan come back after a crash?
//            The file journal written by the append arm is reopened cold
//            and the constructor's recovery scan is timed; the record
//            count is pinned exactly (recovery that silently drops valid
//            records is a correctness bug, not a perf number).
//
//   replay   does the recorder round-trip? A seeded workload is recorded
//            and re-driven through a fresh overlay (core/replay); the
//            delivery multiset must match the centralized exact matcher
//            and the recording's own fingerprint. Virtual-time and fully
//            deterministic — gated exactly in CI.
//
// Writes BENCH_durability.json for the perf-trend gate
// (tools/bench_gate.py). Exit status: 0 when the deterministic gates
// hold, 1 otherwise.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cake/core/replay.hpp"
#include "cake/journal/journal.hpp"
#include "cake/util/table.hpp"
#include "cake/workload/generators.hpp"

namespace {

using namespace cake;

constexpr int kRounds = 5;
constexpr std::uint64_t kSeed = 4242;

struct AppendArm {
  const char* name;
  double best_events_per_sec = 0.0;
  double bytes_per_event = 0.0;
};

// Times appending `frames` round-robin until `events` records are in the
// log. Rotation and retention stay on their broker defaults so the arm
// measures the configuration the overlay actually runs.
void run_append_arm(AppendArm& arm, journal::Storage& storage,
                    const std::vector<std::vector<std::byte>>& frames,
                    std::size_t events) {
  journal::Journal log{storage};
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t e = 0; e < events; ++e)
    log.append_event(frames[e % frames.size()]);
  log.sync();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  arm.best_events_per_sec =
      std::max(arm.best_events_per_sec, double(events) / elapsed.count());
  arm.bytes_per_event =
      double(log.stats().bytes_appended) / double(events);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t events =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50'000;
  if (events == 0) {
    std::cerr << "usage: " << argv[0] << " [events > 0]\n";
    return 2;
  }
  workload::ensure_types_registered();

  // Source material: record a real workload once and lift its event frames,
  // so the append arms write the byte sizes brokers actually journal.
  journal::MemStorage recorded;
  journal::Journal recorder{recorded};
  const core::ReplayConfig rc;
  const core::ReplayReport live = core::record_workload(rc, kSeed, recorder);
  std::vector<std::vector<std::byte>> frames;
  recorder.scan(0, [&](const journal::Record& rec) {
    if (rec.kind == journal::RecordKind::Event)
      frames.push_back(rec.payload);
  });
  if (frames.empty() || !live.exact) {
    std::cerr << "recording failed: " << live.diff << "\n";
    return 1;
  }

  std::cout << "=== A17: Durability cost and recovery fidelity ===\n"
            << events << " appends of " << frames.size()
            << " recorded frames, best of " << kRounds << " rounds\n\n";

  const std::filesystem::path dir = "bench_durability_journal";
  AppendArm mem_arm{"append_mem"};
  AppendArm file_arm{"append_file"};
  for (int round = 0; round < kRounds; ++round) {
    journal::MemStorage mem;
    run_append_arm(mem_arm, mem, frames, events);
    std::filesystem::remove_all(dir);
    journal::FileStorage file{dir};
    run_append_arm(file_arm, file, frames, events);
  }

  // Recovery: reopen the file journal the last round left behind and time
  // the constructor's segment-chain scan.
  double recovery_ms = 0.0;
  std::uint64_t recovered = 0;
  {
    journal::FileStorage file{dir};
    const auto start = std::chrono::steady_clock::now();
    journal::Journal reopened{file};
    const std::chrono::duration<double, std::milli> elapsed =
        std::chrono::steady_clock::now() - start;
    recovery_ms = elapsed.count();
    recovered = reopened.stats().recovered_records;
  }
  std::filesystem::remove_all(dir);

  // Replay: re-drive the recording and diff against the exact matcher.
  const core::ReplayReport replayed =
      core::replay_workload(rc, kSeed, recorder);

  util::TextTable table{{"Arm", "Events/s", "Bytes/event"}};
  for (const AppendArm* arm : {&mem_arm, &file_arm})
    table.add_row({arm->name, util::format_number(arm->best_events_per_sec),
                   util::format_number(arm->bytes_per_event)});
  table.print(std::cout);
  std::cout << "\nrecovery: " << recovered << " records in "
            << util::format_number(recovery_ms) << " ms\n"
            << "replay: " << replayed.deliveries << " deliveries, expected "
            << replayed.expected << ", "
            << (replayed.exact ? "exact" : "MISMATCH") << "\n";

  {
    std::ofstream json{"BENCH_durability.json"};
    json << "{\n  \"experiment\": \"A17\",\n  \"events\": " << events
         << ",\n  \"arms\": [\n"
         << "    {\"name\": \"append_mem\", \"events_per_sec\": "
         << mem_arm.best_events_per_sec
         << ", \"bytes_per_event\": " << mem_arm.bytes_per_event << "},\n"
         << "    {\"name\": \"append_file\", \"events_per_sec\": "
         << file_arm.best_events_per_sec
         << ", \"bytes_per_event\": " << file_arm.bytes_per_event << "}\n"
         << "  ],\n  \"recovery\": {\"records\": " << recovered
         << ", \"recovery_ms\": " << recovery_ms
         << "},\n  \"replay\": {\"deliveries\": " << replayed.deliveries
         << ", \"expected\": " << replayed.expected << ", \"exact\": "
         << (replayed.exact ? "true" : "false")
         << ", \"fingerprint_matches\": "
         << (replayed.fingerprint == live.fingerprint ? "true" : "false")
         << "}\n}\n";
  }

  // Deterministic gates: recovery must find every appended record, and the
  // replay must reproduce both the matcher's prediction and the recording's
  // own delivery fingerprint.
  bool ok = true;
  if (recovered != events) {
    std::cerr << "GATE: recovery found " << recovered << " of " << events
              << " records\n";
    ok = false;
  }
  if (!replayed.exact) {
    std::cerr << "GATE: replay diverged from the matcher: " << replayed.diff
              << "\n";
    ok = false;
  }
  if (replayed.fingerprint != live.fingerprint) {
    std::cerr << "GATE: replay fingerprint differs from the recording\n";
    ok = false;
  }
  std::cout << (ok ? "\nA17 durability gate: PASS\n"
                   : "\nA17 durability gate: FAIL\n");
  return ok ? 0 : 1;
}
