// Experiment A3 — the §4.4 wildcard-handling claim: attaching a wildcard
// subscription naively to a stage-1 node floods that node (and the path
// above it) with the whole event class's traffic; the paper's scheme
// attaches it at stage j+1 instead.
//
// Sweep: share of wildcard subscribers from 0% to 50% (wildcarding the two
// least-general attributes, author and title), with wildcard-aware
// placement on and off.
//
// Expected shape: with naive placement, the hottest stage-1 node's load
// (LC) grows sharply with the wildcard share; wildcard-aware placement
// keeps stage-1 hotspots flat by absorbing those subscriptions higher up.
#include "harness.hpp"

int main() {
  using namespace cake;

  std::cout << "=== A3: Wildcard subscription placement (paper §4.4) ===\n"
            << "wildcards: author+title → subscriptions like the paper's "
               "f_x/f_y; sweep of wildcard share\n\n";

  util::TextTable table{{"Wildcard share", "Placement", "Max stage-1 LC",
                         "Avg stage-1 LC", "Max stage-1 events", "Messages"}};

  for (const std::size_t every : {0u, 8u, 4u, 2u}) {
    for (const bool aware : {true, false}) {
      bench::SimConfig config;
      config.stage_counts = {1, 10, 100};
      config.subscribers = 150;
      config.events = 5'000;
      config.wildcard_every = every;
      config.wildcard_count = 2;  // author and title → attach at stage 3
      config.wildcard_aware = aware;

      const bench::SimResult result = bench::run_biblio_sim(config);

      double max_lc = 0.0, sum_lc = 0.0;
      std::uint64_t max_events = 0;
      std::size_t stage1_nodes = 0;
      for (const auto& load : result.broker_loads) {
        if (load.stage != 1) continue;
        ++stage1_nodes;
        max_lc = std::max(max_lc, load.lc());
        sum_lc += load.lc();
        max_events = std::max(max_events, load.events_received);
      }

      const int share = every == 0 ? 0 : static_cast<int>(100 / every);
      table.add_row({std::to_string(share) + "%",
                     aware ? "stage j+1 (paper)" : "naive stage-1",
                     util::format_number(max_lc),
                     util::format_number(sum_lc / double(stage1_nodes)),
                     std::to_string(max_events),
                     std::to_string(result.network_messages)});
    }
  }

  table.print(std::cout);
  std::cout << "\nShape check: with naive placement the stage-1 hotspot "
               "stays saturated (the wildcard filters degenerate to broad "
               "(year, conference) filters pinned at stage 1); the paper's "
               "stage-(j+1) placement pulls that traffic up the tree, so "
               "stage-1 max and average load fall as the share grows.\n";
  return 0;
}
