// Experiment A5 — stage-depth ablation: the paper's architecture allows an
// "arbitrarily-deep hierarchy" (§4); this sweep quantifies what depth buys.
//
// Fixed subscriber/event workload on hierarchies of 1..4 broker stages
// (the 1-stage case collapses to a single filtering node, i.e. close to
// the centralized server).
//
// Expected shape: max per-node RLC falls as stages are added (work is
// split and pre-filtering thins traffic), at the cost of more total
// messages (extra hops).
#include "harness.hpp"

int main() {
  using namespace cake;

  std::cout << "=== A5: Hierarchy-depth ablation (paper §4) ===\n\n";

  util::TextTable table{{"Stages", "Brokers", "Max node RLC", "Global RLC",
                         "Messages", "Avg latency (ms)", "Delivered"}};

  const std::vector<std::vector<std::size_t>> depths{
      {1},
      {1, 10},
      {1, 10, 100},
      {1, 5, 25, 125},
  };

  for (const auto& stage_counts : depths) {
    bench::SimConfig config;
    config.stage_counts = stage_counts;
    config.subscribers = 150;
    config.events = 5'000;

    const bench::SimResult result = bench::run_biblio_sim(config);

    double max_rlc = 0.0;
    for (const auto& load : result.all_loads())
      max_rlc = std::max(max_rlc, load.rlc(config.events, config.subscribers));

    const util::RunningStats latency =
        metrics::delivery_latency(*result.overlay);

    std::size_t brokers = 0;
    for (const std::size_t n : stage_counts) brokers += n;

    table.add_row({std::to_string(stage_counts.size()),
                   std::to_string(brokers),
                   util::format_number(max_rlc),
                   util::format_number(metrics::global_rlc(result.summaries())),
                   std::to_string(result.network_messages),
                   util::format_number(latency.mean() / 1000.0),
                   std::to_string(result.deliveries)});
  }

  table.print(std::cout);
  std::cout << "\nShape check: deeper hierarchies trade messages (hops) and "
               "delivery latency (one link ms per extra stage) for a falling "
               "max per-node RLC; deliveries stay identical.\n";
  return 0;
}
