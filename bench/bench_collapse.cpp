// Experiment A8 — §3.4's "collapsing subscriptions": on the common path,
// a covering weakened filter subsumes the filters it covers ("we can now
// ignore filter f1 ... and keep only g1").
//
// Stress case: stock subscriptions (symbol equality + a price bound) with
// NO advertised schema, so brokers weaken by identity and the only
// redundancy available is covering between price bounds on hot symbols.
//
// Expected shape: with covering-collapse on, inner stages hold fewer
// filters and renewal/control traffic shrinks; deliveries are identical.
#include <iostream>

#include "cake/routing/overlay.hpp"
#include "cake/util/table.hpp"
#include "cake/workload/generators.hpp"

int main() {
  using namespace cake;

  std::cout << "=== A8: Covering-collapse of upward submissions (paper "
               "§3.4) ===\n"
            << "200 stock subscriptions (symbol =, price <), no schema "
               "(identity weakening), 5000 quotes\n\n";

  util::TextTable table{{"Collapse", "Filters@1", "Filters@2", "Filters@3",
                         "Control msgs", "Deliveries"}};

  for (const bool collapse : {false, true}) {
    workload::ensure_types_registered();
    routing::OverlayConfig config;
    config.stage_counts = {1, 5, 25};
    config.broker.covering_collapse = collapse;
    config.seed = 99;
    routing::Overlay overlay{config};
    auto& pub = overlay.add_publisher();

    workload::StockConfig stock_config;
    stock_config.symbols = 20;  // hot symbols → many covering bounds
    workload::StockGenerator gen{stock_config, 4242};

    for (int i = 0; i < 200; ++i) {
      overlay.add_subscriber().subscribe(gen.next_subscription(), {});
      overlay.run();
    }
    for (int e = 0; e < 5'000; ++e) pub.publish(event::image_of(gen.next()));
    overlay.run();

    std::size_t filters_by_stage[4] = {0, 0, 0, 0};
    std::uint64_t control = 0;
    for (const auto& broker : overlay.brokers()) {
      const auto stats = broker->stats();
      filters_by_stage[broker->stage()] += stats.filters;
      control += stats.control_received;
    }
    std::uint64_t deliveries = 0;
    for (const auto& sub : overlay.subscribers())
      deliveries += sub->stats().events_delivered;

    table.add_row({collapse ? "on" : "off",
                   std::to_string(filters_by_stage[1]),
                   std::to_string(filters_by_stage[2]),
                   std::to_string(filters_by_stage[3]),
                   std::to_string(control), std::to_string(deliveries)});
  }

  table.print(std::cout);
  std::cout << "\nShape check: identical deliveries; stages 2-3 hold fewer "
               "filters with the collapse on (only the weakest bound per "
               "symbol survives upward).\n";
  return 0;
}
